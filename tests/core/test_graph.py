"""Tests for application dataflow graphs."""

import pytest

from repro.core.exceptions import GraphError, GraphValidationError
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import AppGraph, FunctionUnitSpec, GraphBuilder


def _source():
    return IterableSource([])


def _compute():
    return LambdaUnit(lambda values: values)


def chain_graph():
    return (GraphBuilder("chain")
            .source("src", _source)
            .unit("f1", _compute)
            .unit("f2", _compute)
            .sink("snk", CollectingSink)
            .chain("src", "f1", "f2", "snk")
            .build())


class TestFunctionUnitSpec:
    def test_roles(self):
        spec = FunctionUnitSpec("s", _source, role="source")
        assert spec.is_source and not spec.is_sink

    def test_invalid_role_rejected(self):
        with pytest.raises(GraphError):
            FunctionUnitSpec("x", _compute, role="weird")

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            FunctionUnitSpec("", _compute)


class TestGraphConstruction:
    def test_duplicate_unit_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("a", _compute))
        with pytest.raises(GraphError):
            graph.add_unit(FunctionUnitSpec("a", _compute))

    def test_connect_unknown_unit_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("a", _compute))
        with pytest.raises(GraphError):
            graph.connect("a", "ghost")

    def test_self_loop_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("a", _compute))
        with pytest.raises(GraphError):
            graph.connect("a", "a")

    def test_duplicate_edge_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("a", _compute))
        graph.add_unit(FunctionUnitSpec("b", _compute))
        graph.connect("a", "b")
        with pytest.raises(GraphError):
            graph.connect("a", "b")


class TestQueries:
    def test_up_and_downstreams(self):
        graph = chain_graph()
        assert graph.downstreams("src") == ["f1"]
        assert graph.upstreams("f2") == ["f1"]
        assert graph.downstreams("snk") == []
        assert graph.upstreams("src") == []

    def test_sources_and_sinks(self):
        graph = chain_graph()
        assert [s.name for s in graph.sources()] == ["src"]
        assert [s.name for s in graph.sinks()] == ["snk"]

    def test_compute_units(self):
        graph = chain_graph()
        assert sorted(s.name for s in graph.compute_units()) == ["f1", "f2"]

    def test_edges(self):
        graph = chain_graph()
        assert ("src", "f1") in graph.edges()
        assert len(graph.edges()) == 3

    def test_unknown_unit_raises(self):
        with pytest.raises(GraphError):
            chain_graph().unit("nope")


class TestValidation:
    def test_valid_chain_passes(self):
        chain_graph().validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            AppGraph().validate()

    def test_missing_source_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("snk", CollectingSink, role="sink"))
        with pytest.raises(GraphValidationError, match="no source"):
            graph.validate()

    def test_missing_sink_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("src", _source, role="source"))
        with pytest.raises(GraphValidationError, match="no sink"):
            graph.validate()

    def test_unreachable_unit_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("src", _source, role="source"))
        graph.add_unit(FunctionUnitSpec("f", _compute))
        graph.add_unit(FunctionUnitSpec("snk", CollectingSink, role="sink"))
        graph.connect("src", "snk")
        graph.connect("f", "snk")
        with pytest.raises(GraphValidationError, match="unreachable"):
            graph.validate()

    def test_dead_end_unit_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("src", _source, role="source"))
        graph.add_unit(FunctionUnitSpec("f", _compute))
        graph.add_unit(FunctionUnitSpec("snk", CollectingSink, role="sink"))
        graph.connect("src", "f")
        graph.connect("src", "snk")
        with pytest.raises(GraphValidationError, match="dead end"):
            graph.validate()

    def test_source_with_upstream_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("s1", _source, role="source"))
        graph.add_unit(FunctionUnitSpec("s2", _source, role="source"))
        graph.add_unit(FunctionUnitSpec("snk", CollectingSink, role="sink"))
        graph.connect("s1", "s2")
        graph.connect("s2", "snk")
        with pytest.raises(GraphValidationError, match="upstream"):
            graph.validate()

    def test_cycle_rejected(self):
        graph = AppGraph()
        graph.add_unit(FunctionUnitSpec("src", _source, role="source"))
        graph.add_unit(FunctionUnitSpec("a", _compute))
        graph.add_unit(FunctionUnitSpec("b", _compute))
        graph.add_unit(FunctionUnitSpec("snk", CollectingSink, role="sink"))
        graph.connect("src", "a")
        graph.connect("a", "b")
        graph.connect("b", "a")
        graph.connect("b", "snk")
        with pytest.raises(GraphValidationError, match="cycle"):
            graph.topological_order()


class TestTopology:
    def test_topological_order_of_chain(self):
        assert chain_graph().topological_order() == ["src", "f1", "f2", "snk"]

    def test_stages_of_chain(self):
        assert chain_graph().stages() == ["src", "f1", "f2", "snk"]

    def test_stages_rejects_fan_out(self):
        graph = (GraphBuilder("fan")
                 .source("src", _source)
                 .unit("a", _compute)
                 .unit("b", _compute)
                 .sink("snk", CollectingSink)
                 .connect("src", "a").connect("src", "b")
                 .connect("a", "snk").connect("b", "snk")
                 .build())
        with pytest.raises(GraphError):
            graph.stages()

    def test_diamond_topological_order(self):
        graph = (GraphBuilder("diamond")
                 .source("src", _source)
                 .unit("a", _compute)
                 .unit("b", _compute)
                 .sink("snk", CollectingSink)
                 .connect("src", "a").connect("src", "b")
                 .connect("a", "snk").connect("b", "snk")
                 .build())
        order = graph.topological_order()
        assert order.index("src") < order.index("a") < order.index("snk")
        assert order.index("src") < order.index("b") < order.index("snk")


class TestBuilder:
    def test_build_validates(self):
        builder = GraphBuilder("bad").source("src", _source)
        with pytest.raises(GraphValidationError):
            builder.build()

    def test_chain_connects_pairwise(self):
        graph = chain_graph()
        assert graph.edges() == [("src", "f1"), ("f1", "f2"), ("f2", "snk")]
