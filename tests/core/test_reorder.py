"""Tests for the sink reorder buffer (paper Sec. IV-C / Fig. 8)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reorder import ReorderBuffer


def offer_all(buffer, seqs):
    released = []
    for when, seq in enumerate(seqs):
        released.extend(buffer.offer(seq, float(when)))
    return released


class TestBasicOrdering:
    def test_in_order_released_immediately(self):
        buffer = ReorderBuffer(capacity=4)
        released = offer_all(buffer, [0, 1, 2])
        assert [r.seq for r in released] == [0, 1, 2]

    def test_out_of_order_buffered_until_gap_fills(self):
        buffer = ReorderBuffer(capacity=4)
        assert buffer.offer(1, 0.0) == []
        released = buffer.offer(0, 1.0)
        assert [r.seq for r in released] == [0, 1]

    def test_playback_is_monotonic(self):
        buffer = ReorderBuffer(capacity=4)
        offer_all(buffer, [3, 0, 2, 1, 5, 4])
        assert buffer.is_monotonic()

    def test_capacity_forces_release_with_gap(self):
        buffer = ReorderBuffer(capacity=2)
        released = offer_all(buffer, [5, 6, 7])
        # seq 0..4 never arrive; the full buffer forces 5 out.
        assert released[0].seq == 5
        assert released[0].skipped_gap == 5

    def test_stale_arrival_dropped(self):
        buffer = ReorderBuffer(capacity=1)
        offer_all(buffer, [3, 4])  # forces next_seq past 0
        assert buffer.offer(0, 9.0) == []
        assert buffer.stale_drops == 1

    def test_duplicate_ignored(self):
        buffer = ReorderBuffer(capacity=4)
        buffer.offer(2, 0.0)
        buffer.offer(2, 1.0)
        assert buffer.duplicates == 1
        assert len(buffer) == 1

    def test_flush_releases_everything_in_order(self):
        buffer = ReorderBuffer(capacity=10)
        offer_all(buffer, [4, 2, 8])
        records = buffer.flush(now=10.0)
        assert [r.seq for r in records] == [2, 4, 8]
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(capacity=0)


class TestSizing:
    def test_for_rate_uses_timespan(self):
        buffer = ReorderBuffer.for_rate(24.0, timespan=1.0)
        assert buffer.capacity == 24

    def test_for_rate_minimum_one(self):
        assert ReorderBuffer.for_rate(0.2, timespan=1.0).capacity == 1

    def test_for_rate_custom_timespan(self):
        assert ReorderBuffer.for_rate(10.0, timespan=2.0).capacity == 20


class TestMetrics:
    def test_buffering_delay_measured(self):
        buffer = ReorderBuffer(capacity=4)
        buffer.offer(1, 0.0)          # waits for 0
        released = buffer.offer(0, 3.0)
        by_seq = {r.seq: r for r in released}
        assert by_seq[1].buffering_delay == pytest.approx(3.0)
        assert by_seq[0].buffering_delay == pytest.approx(0.0)

    def test_mean_buffering_delay(self):
        buffer = ReorderBuffer(capacity=4)
        assert buffer.mean_buffering_delay() is None
        offer_all(buffer, [0, 1])
        assert buffer.mean_buffering_delay() == pytest.approx(0.0)

    def test_total_skipped(self):
        buffer = ReorderBuffer(capacity=1)
        offer_all(buffer, [2, 5])
        buffer.flush(9.0)
        assert buffer.total_skipped() == 4  # 0,1 before 2; 3,4 before 5


class TestPropertyBased:
    @given(st.permutations(list(range(20))),
           st.integers(min_value=1, max_value=30))
    def test_monotonic_for_any_permutation(self, seqs, capacity):
        buffer = ReorderBuffer(capacity=capacity)
        offer_all(buffer, seqs)
        buffer.flush(float(len(seqs)))
        assert buffer.is_monotonic()

    @given(st.permutations(list(range(15))))
    def test_large_buffer_recovers_perfect_order(self, seqs):
        buffer = ReorderBuffer(capacity=15)
        released = offer_all(buffer, seqs)
        released.extend(buffer.flush(99.0))
        assert [r.seq for r in released] == list(range(15))
        assert buffer.total_skipped() == 0

    @given(st.lists(st.integers(min_value=0, max_value=40),
                    min_size=1, max_size=80),
           st.integers(min_value=1, max_value=10))
    def test_never_releases_duplicate_seq(self, seqs, capacity):
        buffer = ReorderBuffer(capacity=capacity)
        released = offer_all(buffer, seqs)
        released.extend(buffer.flush(999.0))
        out = [r.seq for r in released]
        assert len(out) == len(set(out))

    @given(st.permutations(list(range(12))),
           st.integers(min_value=1, max_value=12))
    def test_everything_offered_is_released_or_stale(self, seqs, capacity):
        buffer = ReorderBuffer(capacity=capacity)
        released = offer_all(buffer, seqs)
        released.extend(buffer.flush(99.0))
        assert len(released) + buffer.stale_drops == len(seqs)
