"""Tests for the extension policies (JSQ, WRR)."""

from collections import Counter

import pytest

from repro.core.exceptions import PolicyError, RoutingError
from repro.core.latency import DownstreamStats
from repro.core.policies import (EXTENSION_POLICY_NAMES,
                                 JoinShortestQueuePolicy,
                                 WeightedRoundRobinPolicy, make_policy)


class TestRegistry:
    def test_extension_names_registered(self):
        for name in EXTENSION_POLICY_NAMES:
            assert make_policy(name).name == name

    def test_extensions_not_in_paper_list(self):
        from repro.core.policies import POLICY_NAMES
        assert not set(EXTENSION_POLICY_NAMES) & set(POLICY_NAMES)


class TestJoinShortestQueue:
    def test_routes_to_emptiest_backlog(self):
        policy = JoinShortestQueuePolicy(seed=0)
        policy.on_downstream_added("a")
        policy.on_downstream_added("b")
        first = policy.route()   # ties break by id: a
        second = policy.route()  # a has backlog 1 -> b
        assert {first, second} == {"a", "b"}

    def test_acks_free_backlog(self):
        policy = JoinShortestQueuePolicy(seed=0)
        policy.on_downstream_added("a")
        policy.on_downstream_added("b")
        policy.route()  # a: 1
        policy.route()  # b: 1
        policy.on_acked("a")
        assert policy.route() == "a"

    def test_backlog_never_negative(self):
        policy = JoinShortestQueuePolicy(seed=0)
        policy.on_downstream_added("a")
        policy.on_acked("a")
        assert policy.backlog("a") == 0

    def test_slow_downstream_starved(self):
        policy = JoinShortestQueuePolicy(seed=0)
        policy.on_downstream_added("fast")
        policy.on_downstream_added("slow")
        counts = Counter()
        for _ in range(100):
            choice = policy.route()
            counts[choice] += 1
            if choice == "fast":
                policy.on_acked("fast")  # fast ACKs immediately
        assert counts["fast"] > 90
        assert counts["slow"] <= 2  # only while probing an empty backlog

    def test_removed_member_not_routed(self):
        policy = JoinShortestQueuePolicy(seed=0)
        policy.on_downstream_added("a")
        policy.on_downstream_added("b")
        policy.on_downstream_removed("a")
        assert all(policy.route() == "b" for _ in range(5))

    def test_no_members_raises(self):
        with pytest.raises(RoutingError):
            JoinShortestQueuePolicy(seed=0).route()

    def test_update_selects_alive(self):
        policy = JoinShortestQueuePolicy(seed=0)
        policy.on_downstream_added("a")
        stats = {"a": DownstreamStats(downstream_id="a", latency=0.1)}
        decision = policy.update(stats, input_rate=5.0)
        assert decision.selected == ["a"]


class TestWeightedRoundRobin:
    def test_weights_proportional_to_capabilities(self):
        policy = WeightedRoundRobinPolicy(
            seed=0, capabilities={"fast": 9.0, "slow": 1.0})
        policy.on_downstream_added("fast")
        policy.on_downstream_added("slow")
        counts = Counter(policy.route() for _ in range(2000))
        assert counts["fast"] > counts["slow"] * 5

    def test_unknown_member_gets_mean_capability(self):
        policy = WeightedRoundRobinPolicy(seed=0, capabilities={"a": 4.0})
        policy.on_downstream_added("a")
        policy.on_downstream_added("mystery")
        decision = policy.update(
            {"a": DownstreamStats(downstream_id="a"),
             "mystery": DownstreamStats(downstream_id="mystery")},
            input_rate=5.0)
        assert decision.weights["mystery"] == pytest.approx(
            decision.weights["a"])

    def test_no_capabilities_uniform(self):
        policy = WeightedRoundRobinPolicy(seed=0)
        policy.on_downstream_added("a")
        policy.on_downstream_added("b")
        decision = policy.update(
            {d: DownstreamStats(downstream_id=d) for d in ("a", "b")},
            input_rate=5.0)
        assert decision.weights["a"] == decision.weights["b"]

    def test_invalid_capability_rejected(self):
        with pytest.raises(PolicyError):
            WeightedRoundRobinPolicy(capabilities={"a": 0.0})

    def test_static_despite_latency_changes(self):
        policy = WeightedRoundRobinPolicy(
            seed=0, capabilities={"a": 1.0, "b": 1.0})
        policy.on_downstream_added("a")
        policy.on_downstream_added("b")
        # Report awful latency for a; WRR must not care.
        decision = policy.update(
            {"a": DownstreamStats(downstream_id="a", latency=99.0),
             "b": DownstreamStats(downstream_id="b", latency=0.01)},
            input_rate=5.0)
        assert decision.weights["a"] == pytest.approx(decision.weights["b"])


class TestExtensionsInSimulation:
    def test_jsq_meets_target_on_fast_trio(self):
        from repro import profiles
        from repro.simulation.swarm import SwarmConfig, run_swarm
        from repro.simulation.workload import face_workload
        config = SwarmConfig(workload=face_workload(),
                             workers=profiles.worker_profiles(["G", "H", "I"]),
                             source=profiles.device_profile("A"),
                             policy="JSQ", duration=15.0, seed=0)
        result = run_swarm(config)
        assert result.throughput > 20.0

    def test_wrr_runs_on_testbed(self):
        from repro.simulation import scenarios
        from repro.simulation.swarm import run_swarm
        result = run_swarm(scenarios.testbed(policy="WRR", duration=15.0))
        assert result.throughput > 5.0
