"""Keyed routing inside the shared LrsController: ownership, parking,
pause/resume, split/move accounting — the behavior both substrates share."""

from repro import metrics as metrics_mod
from repro.core.controller import LrsController, PolicyConfig
from repro.core.delivery import AT_LEAST_ONCE, DeliveryConfig
from repro.core.keyed import (KEY_SPACE, KeyedConfig, KeyRange,
                              KeyRangeTable)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class _RecordingEgress:
    def __init__(self, clock):
        self.clock = clock
        self.sent = []

    def send(self, downstream_id, seq, context):
        self.sent.append((downstream_id, seq))
        return self.clock()


def _keyed_controller(clock, egress, registry, at_least_once=True,
                      split_enabled=False, owners=("a", "b")):
    delivery = (DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=64)
                if at_least_once else None)
    controller = LrsController(
        PolicyConfig(policy="RR", seed=0, delivery=delivery,
                     keyed=KeyedConfig(key_count=8,
                                       split_enabled=split_enabled,
                                       hot_ratio=1.5,
                                       min_split_interval=0.0)),
        clock=clock, egress=egress, registry=registry, name="u>v")
    for owner in owners:
        controller.add_downstream(owner)
    controller.set_key_table(KeyRangeTable.bootstrap(owners))
    return controller


HALF = KEY_SPACE // 2


class TestKeyedDispatch:
    def test_owner_overrides_policy(self):
        clock = FakeClock()
        egress = _RecordingEgress(clock)
        controller = _keyed_controller(clock, egress,
                                       metrics_mod.MetricsRegistry())
        # every hash in [0, HALF) goes to "a" regardless of RR rotation
        for seq, key_hash in enumerate([0, 1, HALF - 1]):
            assert controller.dispatch(seq, context=b"x",
                                       key_hash=key_hash) == "a"
        assert controller.dispatch(3, context=b"x", key_hash=HALF) == "b"
        assert [owner for owner, _ in egress.sent] == ["a", "a", "a", "b"]

    def test_unkeyed_tuples_keep_policy_routing(self):
        clock = FakeClock()
        controller = _keyed_controller(clock, _RecordingEgress(clock),
                                       metrics_mod.MetricsRegistry())
        chosen = {controller.dispatch(seq, context=b"x") for seq in range(4)}
        assert chosen == {"a", "b"}  # RR still rotates for keyless tuples

    def test_paused_range_parks_then_resume_redelivers(self):
        clock = FakeClock()
        egress = _RecordingEgress(clock)
        controller = _keyed_controller(clock, egress,
                                       metrics_mod.MetricsRegistry())
        a_range = KeyRange(0, HALF)
        controller.pause_range(a_range)
        assert controller.dispatch(0, context=b"x", key_hash=5) is None
        assert egress.sent == []  # parked, not sent anywhere
        controller.move_range(a_range, "b", reason="drain")
        controller.resume_range(a_range)
        # the resume sweep re-placed the parked tuple on the new owner
        assert ("b", 0) in egress.sent

    def test_best_effort_paused_range_drops(self):
        clock = FakeClock()
        egress = _RecordingEgress(clock)
        controller = _keyed_controller(clock, egress,
                                       metrics_mod.MetricsRegistry(),
                                       at_least_once=False)
        controller.pause_range(KeyRange(0, HALF))
        assert controller.dispatch(0, context=b"x", key_hash=5) is None
        controller.resume_range(KeyRange(0, HALF))
        assert egress.sent == []  # nothing retained to redeliver

    def test_dead_owner_parks_until_move(self):
        clock = FakeClock()
        egress = _RecordingEgress(clock)
        controller = _keyed_controller(clock, egress,
                                       metrics_mod.MetricsRegistry())
        controller.mark_dead("a")
        assert controller.dispatch(0, context=b"x", key_hash=5) is None
        controller.move_range(KeyRange(0, HALF), "b", reason="crash")
        controller.resume_range(KeyRange(0, HALF))
        assert ("b", 0) in egress.sent


class TestRangeLifecycle:
    def test_move_range_counts_reason(self):
        clock = FakeClock()
        registry = metrics_mod.MetricsRegistry()
        controller = _keyed_controller(clock, _RecordingEgress(clock),
                                       registry)
        controller.move_range(KeyRange(0, HALF), "b", reason="hot_split")
        assert registry.value(metrics_mod.KEY_RANGE_MOVES_TOTAL,
                              reason="hot_split", edge="u>v") == 1

    def test_split_range_halves_in_table(self):
        clock = FakeClock()
        controller = _keyed_controller(clock, _RecordingEgress(clock),
                                       metrics_mod.MetricsRegistry())
        left, right = controller.split_range(KeyRange(0, HALF))
        assert (left, right) == (KeyRange(0, HALF // 2),
                                 KeyRange(HALF // 2, HALF))
        assert controller.keyed_ranges_of("a") == (left, right)

    def test_hot_range_detected_and_counted(self):
        clock = FakeClock()
        registry = metrics_mod.MetricsRegistry()
        controller = _keyed_controller(clock, _RecordingEgress(clock),
                                       registry, split_enabled=True)
        # all traffic into a's half: far above its fair share of 2 owners
        for seq in range(60):
            clock.now = seq * 0.01
            controller.dispatch(seq, context=b"x", key_hash=seq % HALF)
        found = controller.hot_range()
        assert found is not None and found[0] == KeyRange(0, HALF)
        assert registry.value(metrics_mod.HOT_KEYS_DETECTED_TOTAL,
                              edge="u>v") == 1

    def test_no_detector_without_split_enabled(self):
        clock = FakeClock()
        controller = _keyed_controller(clock, _RecordingEgress(clock),
                                       metrics_mod.MetricsRegistry(),
                                       split_enabled=False)
        for seq in range(60):
            clock.now = seq * 0.01
            controller.dispatch(seq, context=b"x", key_hash=seq % HALF)
        assert controller.hot_range() is None
