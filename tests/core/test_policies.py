"""Tests for the five routing policies (RR, PR, LR, PRS, LRS)."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import PolicyError, RoutingError
from repro.core.latency import DownstreamStats
from repro.core.policies import (POLICY_NAMES, make_policy,
                                 weights_from_delays)
from repro.core.policies.base import ProbeScheduler


def stats_for(latencies=None, processing=None, alive=None):
    """Build a DownstreamStats map from simple dicts."""
    latencies = latencies or {}
    processing = processing or {}
    alive = alive or {}
    ids = set(latencies) | set(processing) | set(alive)
    return {
        downstream: DownstreamStats(
            downstream_id=downstream,
            latency=latencies.get(downstream),
            processing_delay=processing.get(downstream),
            alive=alive.get(downstream, True))
        for downstream in ids
    }


class TestRegistry:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_make_each_policy(self, name):
        assert make_policy(name).name == name

    def test_case_insensitive(self):
        assert make_policy("lrs").name == "LRS"

    def test_unknown_rejected(self):
        with pytest.raises(PolicyError):
            make_policy("FIFO")


class TestWeightsFromDelays:
    def test_inverse_delay(self):
        weights = weights_from_delays({"a": 0.1, "b": 0.2})
        assert weights["a"] == pytest.approx(2 * weights["b"])

    def test_unknown_gets_mean_inverse(self):
        weights = weights_from_delays({"a": 0.1, "b": None})
        assert weights["b"] == pytest.approx(weights["a"])

    def test_all_unknown_uniform(self):
        weights = weights_from_delays({"a": None, "b": None})
        assert weights["a"] == weights["b"]


class TestRoundRobin:
    def test_cycles_over_members(self):
        policy = make_policy("RR")
        for member in ("x", "y", "z"):
            policy.on_downstream_added(member)
        picks = [policy.route() for _ in range(6)]
        assert picks[:3] == sorted(picks[:3])
        assert Counter(picks) == {"x": 2, "y": 2, "z": 2}

    def test_no_members_raises(self):
        with pytest.raises(RoutingError):
            make_policy("RR").route()

    def test_removed_member_not_routed(self):
        policy = make_policy("RR")
        policy.on_downstream_added("a")
        policy.on_downstream_added("b")
        policy.on_downstream_removed("a")
        assert all(policy.route() == "b" for _ in range(4))

    def test_update_selects_all_alive(self):
        policy = make_policy("RR")
        policy.on_downstream_added("a")
        policy.on_downstream_added("b")
        decision = policy.update(stats_for(latencies={"a": 0.1, "b": 9.0}),
                                 input_rate=10.0)
        assert decision.selected == ["a", "b"]
        assert decision.weights["a"] == decision.weights["b"]


class TestWeightedPolicies:
    def _policy_with_members(self, name, latencies, processing=None):
        policy = make_policy(name, seed=1, probe_tuples=0)
        for member in latencies:
            policy.on_downstream_added(member)
        policy.update(stats_for(latencies=latencies,
                                processing=processing or {}), input_rate=10.0)
        return policy

    def test_lr_prefers_low_latency(self):
        policy = self._policy_with_members(
            "LR", {"fast": 0.1, "slow": 1.0})
        counts = Counter(policy.route() for _ in range(2000))
        assert counts["fast"] > counts["slow"] * 5

    def test_pr_uses_processing_delay_not_latency(self):
        policy = make_policy("PR", seed=1, probe_tuples=0)
        policy.on_downstream_added("weak_link")
        policy.on_downstream_added("slow_cpu")
        # weak_link: terrible latency but great CPU; slow_cpu the reverse.
        policy.update(stats_for(latencies={"weak_link": 2.0, "slow_cpu": 0.2},
                                processing={"weak_link": 0.05,
                                            "slow_cpu": 0.5}),
                      input_rate=10.0)
        counts = Counter(policy.route() for _ in range(2000))
        assert counts["weak_link"] > counts["slow_cpu"] * 5

    def test_lrs_selects_min_prefix(self):
        policy = make_policy("LRS", seed=1, probe_tuples=0)
        for member in ("a", "b", "c"):
            policy.on_downstream_added(member)
        decision = policy.update(
            stats_for(latencies={"a": 0.1, "b": 0.125, "c": 1.0}),
            input_rate=15.0)
        # mu = 10, 8, 1 -> a+b = 18 >= 15, c excluded
        assert decision.selected == ["a", "b"]

    def test_lrs_fallback_selects_all_when_unsatisfiable(self):
        policy = make_policy("LRS", seed=1, probe_tuples=0)
        for member in ("a", "b"):
            policy.on_downstream_added(member)
        decision = policy.update(stats_for(latencies={"a": 1.0, "b": 1.0}),
                                 input_rate=100.0)
        assert decision.selected == ["a", "b"]

    def test_prs_selects_by_processing_delay(self):
        policy = make_policy("PRS", seed=1, probe_tuples=0)
        for member in ("a", "b", "c"):
            policy.on_downstream_added(member)
        decision = policy.update(
            stats_for(latencies={"a": 9.0, "b": 9.0, "c": 9.0},
                      processing={"a": 0.1, "b": 0.2, "c": 0.9}),
            input_rate=12.0)
        assert decision.selected == ["a", "b"]

    def test_selection_includes_unmeasured_when_short(self):
        policy = make_policy("LRS", seed=1, probe_tuples=0)
        for member in ("known", "unknown"):
            policy.on_downstream_added(member)
        decision = policy.update(stats_for(latencies={"known": 1.0,
                                                      "unknown": None}),
                                 input_rate=50.0)
        assert "unknown" in decision.selected

    def test_dead_member_excluded(self):
        policy = make_policy("LRS", seed=1, probe_tuples=0)
        for member in ("a", "b"):
            policy.on_downstream_added(member)
        decision = policy.update(
            stats_for(latencies={"a": 0.1, "b": 0.1},
                      alive={"a": True, "b": False}),
            input_rate=5.0)
        assert decision.selected == ["a"]

    def test_route_only_selected(self):
        policy = make_policy("LRS", seed=3, probe_tuples=0)
        for member in ("fast", "slow"):
            policy.on_downstream_added(member)
        policy.update(stats_for(latencies={"fast": 0.1, "slow": 10.0}),
                      input_rate=5.0)
        assert all(policy.route() == "fast" for _ in range(100))

    @pytest.mark.parametrize("name", ["PR", "LR", "PRS", "LRS"])
    def test_new_member_routable_before_any_stats(self, name):
        policy = make_policy(name, seed=0)
        policy.on_downstream_added("only")
        assert policy.route() == "only"

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_join_mid_stream_gets_share(self, name):
        policy = make_policy(name, seed=0, probe_tuples=0) \
            if name != "RR" else make_policy(name, seed=0)
        policy.on_downstream_added("old")
        policy.update(stats_for(latencies={"old": 0.1},
                                processing={"old": 0.1}), input_rate=1.0)
        policy.on_downstream_added("new")
        counts = Counter(policy.route() for _ in range(500))
        assert counts["new"] > 0

    def test_leave_then_rejoin(self):
        policy = make_policy("LRS", seed=0)
        policy.on_downstream_added("a")
        policy.on_downstream_removed("a")
        policy.on_downstream_added("a")
        assert policy.route() == "a"


class TestProbeScheduler:
    def test_probe_fires_every_n_rounds(self):
        probe = ProbeScheduler(probe_every=3, probe_tuples=2, probe_spacing=1)
        fired = [probe.on_update_round() for _ in range(6)]
        assert fired == [False, False, True, False, False, True]

    def test_probe_tuples_consumed_with_spacing(self):
        probe = ProbeScheduler(probe_every=1, probe_tuples=2, probe_spacing=2)
        probe.on_update_round()
        picks = [probe.consume() for _ in range(6)]
        assert picks == [True, False, True, False, False, False]

    def test_disabled_probing(self):
        probe = ProbeScheduler(probe_every=1, probe_tuples=0)
        assert probe.on_update_round() is False
        assert probe.consume() is False

    def test_policy_probes_unselected_members(self):
        policy = make_policy("LRS", seed=2, probe_every=1, probe_tuples=4,
                             probe_spacing=1)
        for member in ("fast", "slow"):
            policy.on_downstream_added(member)
        policy.update(stats_for(latencies={"fast": 0.1, "slow": 10.0}),
                      input_rate=5.0)
        picks = [policy.route() for _ in range(8)]
        assert "slow" in picks  # probing keeps slow's estimate fresh
