"""Tests for measured delay decomposition and the critical-path walker."""

import pytest

from repro.trace import (ACK_RTT, PROCESS, QUEUE_WAIT, SERIALIZE, SHED,
                        Span, TRANSMIT, critical_path, delay_decomposition,
                        spans_by_tuple, summarize, traced_tuple_ids)


def pipeline_spans(seq, base=0.0):
    """One tuple's life: egress wait, serialize, transmit, ingress wait,
    process."""
    return [
        Span(QUEUE_WAIT, seq, base, base + 0.10, device_id="A",
             hop="egress:A"),
        Span(SERIALIZE, seq, base + 0.10, base + 0.11, device_id="A",
             hop="serialize:A"),
        Span(TRANSMIT, seq, base + 0.11, base + 0.16, device_id="B",
             hop="link:B"),
        Span(QUEUE_WAIT, seq, base + 0.16, base + 0.36, device_id="B",
             hop="ingress:B"),
        Span(PROCESS, seq, base + 0.36, base + 0.56, device_id="B",
             hop="worker:B"),
    ]


class TestDecomposition:
    def test_components_bucketed_like_the_simulator(self):
        split = delay_decomposition(pipeline_spans(0))
        # egress queue_wait + serialize + transmit -> transmission
        assert split["transmission"] == pytest.approx(0.16)
        # receiver-side queue_wait -> queuing
        assert split["queuing"] == pytest.approx(0.20)
        assert split["processing"] == pytest.approx(0.20)

    def test_mean_over_completed_tuples(self):
        spans = pipeline_spans(0) + pipeline_spans(1, base=10.0)
        # An incomplete tuple (no process span) must not drag the means.
        spans.append(Span(QUEUE_WAIT, 2, 0.0, 50.0, hop="ingress:B"))
        split = delay_decomposition(spans)
        assert split["queuing"] == pytest.approx(0.20)
        assert split["processing"] == pytest.approx(0.20)

    def test_instants_do_not_contribute(self):
        spans = pipeline_spans(0)
        spans.append(Span(SHED, 0, 0.5, 0.5, detail="expired"))
        spans.append(Span(ACK_RTT, 0, 0.0, 0.7, hop="egress:A"))
        with_extras = delay_decomposition(spans)
        assert with_extras == delay_decomposition(pipeline_spans(0))

    def test_empty_input(self):
        assert delay_decomposition([]) == {"transmission": 0.0,
                                           "queuing": 0.0,
                                           "processing": 0.0}


class TestGroupingViews:
    def test_spans_by_tuple_ordered_by_start(self):
        spans = list(reversed(pipeline_spans(3)))
        grouped = spans_by_tuple(spans)
        assert list(grouped) == [3]
        starts = [item.start for item in grouped[3]]
        assert starts == sorted(starts)

    def test_traced_tuple_ids(self):
        spans = pipeline_spans(5) + pipeline_spans(2)
        assert traced_tuple_ids(spans) == [2, 5]


class TestCriticalPath:
    def test_walk_reports_untraced_gaps(self):
        spans = [
            Span(QUEUE_WAIT, 1, 0.0, 0.1, hop="egress:A"),
            # 0.2s of untraced slack between egress pop and the wire.
            Span(TRANSMIT, 1, 0.3, 0.4, hop="link:B"),
            Span(PROCESS, 1, 0.4, 0.6, hop="worker:B"),
        ]
        path = critical_path(spans, seq=1)
        assert [round(gap, 6) for gap, _ in path] == [0.0, 0.2, 0.0]
        assert [item.kind for _, item in path] == [QUEUE_WAIT, TRANSMIT,
                                                   PROCESS]

    def test_overlapping_spans_never_produce_negative_gaps(self):
        spans = [
            Span(QUEUE_WAIT, 1, 0.0, 0.5, hop="ingress:B"),
            Span(PROCESS, 1, 0.2, 0.4, hop="worker:B"),
            Span(TRANSMIT, 1, 0.6, 0.7, hop="link:B"),
        ]
        path = critical_path(spans, seq=1)
        assert all(gap >= 0.0 for gap, _ in path)
        # The frontier is the max end seen, so the transmit gap is
        # measured from 0.5 (the queue wait's end), not 0.4.
        assert path[-1][0] == pytest.approx(0.1)

    def test_filters_other_tuples(self):
        spans = pipeline_spans(1) + pipeline_spans(2)
        path = critical_path(spans, seq=2)
        assert all(item.seq == 2 for _, item in path)


class TestSummarize:
    def test_counts_and_shed_reasons(self):
        spans = pipeline_spans(0)
        spans.append(Span(SHED, 9, 1.0, 1.0, detail="queue_full"))
        spans.append(Span(SHED, 10, 2.0, 2.0, detail="queue_full"))
        summary = summarize(spans)
        assert summary["spans"] == 7
        assert summary["tuples"] == 3
        assert summary["by_kind"][PROCESS] == 1
        assert summary["shed_reasons"] == {"queue_full": 2}
        assert set(summary["delay_decomposition"]) == {"transmission",
                                                       "queuing",
                                                       "processing"}
