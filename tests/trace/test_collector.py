"""Tests for the trace ring buffer and the deterministic sampler."""

import threading

import pytest

from repro import metrics as metrics_mod
from repro.core.exceptions import SimulationError
from repro.trace import (NULL_TRACER, PROCESS, QUEUE_WAIT, Span,
                         TraceCollector, Tracer, sample_key)


def span(seq, start=0.0, end=1.0, kind=PROCESS):
    return Span(kind, seq, start, end, device_id="B", hop="worker:B")


class TestSampleKey:
    def test_deterministic(self):
        assert sample_key(7, 42) == sample_key(7, 42)

    def test_seed_changes_key(self):
        keys = {sample_key(7, seed) for seed in range(32)}
        assert len(keys) > 1

    def test_uniform_enough(self):
        # Keys spread over the 32-bit space: the sampled fraction at a
        # 10% threshold lands near 10% for sequential seqs.
        threshold = int(0.1 * 2**32)
        hits = sum(1 for seq in range(10000)
                   if sample_key(seq, 0) < threshold)
        assert 800 <= hits <= 1200


class TestTraceCollector:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            TraceCollector(capacity=0)

    def test_records_below_capacity(self):
        collector = TraceCollector(capacity=8)
        for seq in range(5):
            collector.record(span(seq))
        assert len(collector) == 5
        assert [item.seq for item in collector.spans()] == [0, 1, 2, 3, 4]

    def test_evicts_oldest_above_capacity(self):
        collector = TraceCollector(capacity=4)
        for seq in range(10):
            collector.record(span(seq))
        assert collector.recorded == 10
        assert len(collector) == 4
        assert [item.seq for item in collector.spans()] == [6, 7, 8, 9]

    def test_clear(self):
        collector = TraceCollector(capacity=4)
        collector.record(span(0))
        collector.clear()
        assert len(collector) == 0
        assert collector.spans() == []

    def test_concurrent_writers_no_lost_or_torn_spans(self):
        # 8 threads x 500 spans fit below capacity: every span must be
        # retained intact (the lock-cheap ring's core guarantee).
        threads_count, per_thread = 8, 500
        collector = TraceCollector(capacity=threads_count * per_thread)
        barrier = threading.Barrier(threads_count)

        def writer(thread_index):
            barrier.wait()
            for item in range(per_thread):
                seq = thread_index * per_thread + item
                collector.record(
                    Span(PROCESS, seq, float(seq), float(seq) + 1.0,
                         device_id="d%d" % thread_index,
                         hop="worker:d%d" % thread_index))

        threads = [threading.Thread(target=writer, args=(index,))
                   for index in range(threads_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = collector.spans()
        assert len(spans) == threads_count * per_thread
        seen = set()
        for item in spans:
            # Torn spans would break the seq <-> device/timing coupling.
            thread_index = item.seq // per_thread
            assert item.device_id == "d%d" % thread_index
            assert item.start == float(item.seq)
            assert item.end == float(item.seq) + 1.0
            seen.add(item.seq)
        assert seen == set(range(threads_count * per_thread))

    def test_concurrent_writers_above_capacity_keep_only_capacity(self):
        collector = TraceCollector(capacity=64)
        threads = [threading.Thread(
            target=lambda base=base: [collector.record(span(base + item))
                                      for item in range(100)])
            for base in (0, 1000, 2000, 3000)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert collector.recorded == 400
        assert len(collector.spans()) <= 64


class TestTracer:
    def test_sample_rate_validated(self):
        with pytest.raises(SimulationError):
            Tracer(sample_rate=1.5)

    def test_rate_one_traces_everything(self):
        tracer = Tracer(sample_rate=1.0, seed=3)
        assert all(tracer.sampled(seq) for seq in range(100))

    def test_rate_zero_traces_nothing(self):
        tracer = Tracer(sample_rate=0.0, seed=3)
        assert not any(tracer.sampled(seq) for seq in range(100))

    def test_sampling_deterministic_across_tracers(self):
        # Two hops with the same seed make identical decisions without
        # any coordination.
        first = Tracer(sample_rate=0.3, seed=9)
        second = Tracer(sample_rate=0.3, seed=9)
        decisions = [first.sampled(seq) for seq in range(200)]
        assert decisions == [second.sampled(seq) for seq in range(200)]
        assert any(decisions) and not all(decisions)

    def test_emit_respects_override(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.emit(span(1), sampled=True)
        assert [item.seq for item in tracer.spans()] == [1]
        assert not tracer.emit(span(2), sampled=False)

    def test_emit_records_histogram_even_when_sampled_out(self):
        registry = metrics_mod.MetricsRegistry()
        tracer = Tracer(sample_rate=0.0, registry=registry)
        tracer.emit(span(5, start=0.0, end=0.25))
        assert tracer.spans() == []
        histogram = registry.histogram(metrics_mod.SPAN_SECONDS,
                                       kind=PROCESS)
        assert histogram.count == 1
        assert histogram.total == pytest.approx(0.25)

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.sampled(0)
        assert not NULL_TRACER.emit(span(0))
        assert NULL_TRACER.spans() == []

    def test_span_kind_vocabulary(self):
        assert QUEUE_WAIT in {"queue_wait"}
        assert span(0).duration == 1.0
        assert span(0, start=2.0, end=1.0).duration == 0.0  # clamped
