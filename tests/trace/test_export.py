"""Tests for the JSONL and Chrome trace_event exporters."""

import json

import pytest

from repro.core.exceptions import SerializationError
from repro.trace import (PROCESS, QUEUE_WAIT, REQUIRED_EVENT_KEYS, Span,
                         TRANSMIT, read_jsonl, to_chrome_trace, to_jsonl,
                         validate_chrome_trace, write_chrome_trace,
                         write_jsonl)


def sample_spans():
    return [
        Span(QUEUE_WAIT, 1, 0.0, 0.1, device_id="A", hop="egress:A",
             detail="face"),
        Span(TRANSMIT, 1, 0.1, 0.2, device_id="B", hop="link:B"),
        Span(PROCESS, 1, 0.2, 0.5, device_id="B", hop="worker:B"),
        Span(PROCESS, 2, 0.6, 0.9, device_id="B", hop="worker:B"),
    ]


class TestJsonl:
    def test_one_object_per_line(self):
        text = to_jsonl(sample_spans())
        lines = text.strip().split("\n")
        assert len(lines) == 4
        assert json.loads(lines[0])["kind"] == QUEUE_WAIT

    def test_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_jsonl(sample_spans(), path)
        assert read_jsonl(path) == sample_spans()

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(to_jsonl(sample_spans()[:1]) + "\n\n")
        assert len(read_jsonl(path)) == 1


class TestChromeTrace:
    def test_duration_events_carry_required_keys(self):
        trace = to_chrome_trace(sample_spans())
        events = [event for event in trace["traceEvents"]
                  if event["ph"] == "X"]
        assert len(events) == 4
        for event in events:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event

    def test_microsecond_units(self):
        trace = to_chrome_trace(sample_spans()[:1])
        event = [item for item in trace["traceEvents"]
                 if item["ph"] == "X"][0]
        assert event["ts"] == pytest.approx(0.0)
        assert event["dur"] == pytest.approx(0.1 * 1e6)

    def test_lane_assignment(self):
        trace = to_chrome_trace(sample_spans())
        events = [event for event in trace["traceEvents"]
                  if event["ph"] == "X"]
        # Devices map to distinct pids; hops on a device to distinct
        # tids; same (device, hop) shares a lane.
        device_a = [e for e in events if e["args"]["hop"] == "egress:A"]
        worker_b = [e for e in events if e["args"]["hop"] == "worker:B"]
        link_b = [e for e in events if e["args"]["hop"] == "link:B"]
        assert device_a[0]["pid"] != worker_b[0]["pid"]
        assert worker_b[0]["pid"] == link_b[0]["pid"]
        assert worker_b[0]["tid"] != link_b[0]["tid"]
        assert len({e["tid"] for e in worker_b}) == 1

    def test_metadata_names_devices_and_hops(self):
        trace = to_chrome_trace(sample_spans())
        metadata = [event for event in trace["traceEvents"]
                    if event["ph"] == "M"]
        names = {event["args"]["name"] for event in metadata}
        assert "device A" in names
        assert "worker:B" in names

    def test_validate_accepts_own_output(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(sample_spans(), path)
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        events = validate_chrome_trace(trace)
        assert len(events) == 4
        assert all(event["dur"] >= 0.0 for event in events)

    def test_validate_rejects_missing_keys(self):
        trace = to_chrome_trace(sample_spans())
        bad = [event for event in trace["traceEvents"]
               if event["ph"] == "X"][0]
        del bad["dur"]
        with pytest.raises(SerializationError):
            validate_chrome_trace(trace)

    def test_validate_rejects_negative_duration(self):
        trace = to_chrome_trace(sample_spans())
        event = [item for item in trace["traceEvents"]
                 if item["ph"] == "X"][0]
        event["dur"] = -1.0
        with pytest.raises(SerializationError):
            validate_chrome_trace(trace)

    def test_validate_rejects_unknown_kind(self):
        trace = to_chrome_trace(sample_spans())
        event = [item for item in trace["traceEvents"]
                 if item["ph"] == "X"][0]
        event["name"] = "mystery"
        with pytest.raises(SerializationError):
            validate_chrome_trace(trace)

    def test_validate_rejects_non_trace_objects(self):
        with pytest.raises(SerializationError):
            validate_chrome_trace({"events": []})
        with pytest.raises(SerializationError):
            validate_chrome_trace({"traceEvents": "nope"})
