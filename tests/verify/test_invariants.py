"""Each invariant must fire on a bad synthetic history and stay quiet
on the matching good one — the checker's unit-level teeth."""

from repro.core.keyed import KEY_SPACE, hash_key
from repro.simulation import metrics as sim_metrics
from repro.verify.invariants import (InvariantChecker, RunHistory,
                                     TenantHistory, Violation)


def history(**overrides) -> RunHistory:
    """A minimal clean single-tenant run: 10 emitted, 10 delivered."""
    ledger = TenantHistory(emitted=set(range(10)), judged=set(range(10)),
                           delivered=list(range(10)))
    base = dict(substrate="sim", at_least_once=True,
                tenants={"": ledger})
    base.update(overrides)
    return RunHistory(**base)


def fired(run: RunHistory, invariant: str):
    found = [violation for violation in InvariantChecker().check(run)
             if violation.invariant == invariant]
    return found


class TestCleanBaseline:
    def test_clean_history_raises_nothing(self):
        assert InvariantChecker().check(history()) == []

    def test_violation_to_dict_is_serializable(self):
        violation = Violation("x", "y", {"seqs": {3, 1}})
        assert violation.to_dict()["details"]["seqs"] == [1, 3]


class TestTupleConservation:
    def test_phantom_delivery_fires(self):
        ledger = TenantHistory(emitted=set(range(10)),
                               judged=set(range(10)),
                               delivered=list(range(11)))
        run = history(tenants={"": ledger})
        assert fired(run, "tuple_conservation")

    def test_ghost_drop_charge_fires(self):
        ledger = TenantHistory(emitted=set(range(10)),
                               judged=set(range(10)),
                               delivered=list(range(10)),
                               accounted={99})
        run = history(tenants={"": ledger})
        assert fired(run, "tuple_conservation")

    def test_silent_loss_beyond_eviction_budget_fires(self):
        ledger = TenantHistory(emitted=set(range(10)),
                               judged=set(range(10)),
                               delivered=list(range(8)))  # 8, 9 vanish
        run = history(tenants={"": ledger},
                      evict_reasons={"capacity": 1})
        assert fired(run, "tuple_conservation")

    def test_evicted_loss_is_accounted(self):
        ledger = TenantHistory(emitted=set(range(10)),
                               judged=set(range(10)),
                               delivered=list(range(8)), evictions=2)
        run = history(tenants={"": ledger},
                      evict_reasons={"capacity": 2})
        assert not fired(run, "tuple_conservation")
        assert not fired(run, "at_least_once_completeness")

    def test_retained_and_queued_are_in_flight_not_loss(self):
        ledger = TenantHistory(emitted=set(range(10)),
                               judged=set(range(10)),
                               delivered=list(range(6)),
                               queued_end={6, 7}, retained={8, 9})
        run = history(tenants={"": ledger})
        assert InvariantChecker().check(run) == []

    def test_post_horizon_tuples_are_not_judged(self):
        ledger = TenantHistory(emitted=set(range(12)),
                               judged=set(range(10)),
                               delivered=list(range(10)))
        run = history(tenants={"": ledger})
        assert InvariantChecker().check(run) == []


class TestCompleteness:
    def test_per_tenant_loss_fires(self):
        good = TenantHistory(emitted=set(range(10)),
                             judged=set(range(10)),
                             delivered=list(range(10)))
        bad = TenantHistory(emitted=set(range(100, 110)),
                            judged=set(range(100, 110)),
                            delivered=list(range(100, 105)))
        run = history(tenants={"t0": good, "t1": bad})
        found = fired(run, "at_least_once_completeness")
        assert found and found[0].details["tenant"] == "t1"

    def test_best_effort_mode_skips_completeness(self):
        ledger = TenantHistory(emitted=set(range(10)),
                               judged=set(range(10)), delivered=[0, 1])
        run = history(tenants={"": ledger}, at_least_once=False)
        assert not fired(run, "at_least_once_completeness")
        assert not fired(run, "tuple_conservation")


class TestDedupSoundness:
    def test_duplicate_past_sink_fires(self):
        ledger = TenantHistory(emitted=set(range(10)),
                               judged=set(range(10)),
                               delivered=list(range(10)) + [4])
        run = history(tenants={"": ledger})
        found = fired(run, "dedup_soundness")
        assert found and found[0].details["seqs"] == [4]


class TestEpochFencing:
    def test_missing_recovery_fires(self):
        run = history(expected_recoveries=1, recoveries=0)
        assert fired(run, "epoch_fencing")

    def test_non_monotonic_epochs_fire(self):
        run = history(epochs=(0, 2, 1),
                      expected_recoveries=2, recoveries=2)
        assert fired(run, "epoch_fencing")

    def test_clean_failover_passes(self):
        run = history(epochs=(0, 1), expected_recoveries=1, recoveries=1)
        assert not fired(run, "epoch_fencing")


class TestKeyedIntegrity:
    def _audit(self, owner="B", holder="B"):
        key = "user-7"
        return {
            "tables": {"": [[0, KEY_SPACE, owner]]},
            "stores": {holder: {"": [key]}},
        }

    def test_single_owner_on_owner_passes(self):
        run = history(keyed_audit=self._audit())
        assert not fired(run, "keyed_state_integrity")

    def test_key_in_two_stores_fires(self):
        audit = self._audit()
        audit["stores"]["D"] = {"": ["user-7"]}
        run = history(keyed_audit=audit)
        assert fired(run, "keyed_state_integrity")

    def test_key_on_wrong_owner_fires(self):
        run = history(keyed_audit=self._audit(owner="D", holder="B"))
        found = fired(run, "keyed_state_integrity")
        assert found and found[0].details["owner"] == "D"

    def test_split_table_still_routes_by_hash(self):
        key = "user-7"
        mid = KEY_SPACE // 2
        low_owner, high_owner = ("B", "D")
        holder = low_owner if hash_key(key) < mid else high_owner
        run = history(keyed_audit={
            "tables": {"": [[0, mid, low_owner],
                            [mid, KEY_SPACE, high_owner]]},
            "stores": {holder: {"": [key]}},
        })
        assert not fired(run, "keyed_state_integrity")


class TestBoundedQueues:
    def test_over_capacity_fires(self):
        run = history(queue_depths={"ingress:B": 13}, queue_capacity=12)
        assert fired(run, "bounded_queues")

    def test_at_capacity_passes(self):
        run = history(queue_depths={"ingress:B": 12}, queue_capacity=12)
        assert not fired(run, "bounded_queues")

    def test_unbounded_config_skips(self):
        run = history(queue_depths={"ingress:B": 9999},
                      queue_capacity=None)
        assert not fired(run, "bounded_queues")


class TestTenantIsolation:
    def test_victim_loss_fires(self):
        hot = TenantHistory(emitted=set(range(10)),
                            judged=set(range(10)),
                            delivered=list(range(4)), evictions=6)
        victim = TenantHistory(emitted=set(range(100, 110)),
                               judged=set(range(100, 110)),
                               delivered=list(range(100, 108)))
        run = history(tenants={"t0": hot, "t1": victim},
                      hot_tenant="t0", evict_reasons={"shed": 6})
        found = fired(run, "tenant_isolation")
        assert found and found[0].details["tenant"] == "t1"

    def test_hot_tenant_own_loss_is_fine(self):
        hot = TenantHistory(emitted=set(range(10)),
                            judged=set(range(10)),
                            delivered=list(range(4)), evictions=6)
        victim = TenantHistory(emitted=set(range(100, 110)),
                               judged=set(range(100, 110)),
                               delivered=list(range(100, 110)))
        run = history(tenants={"t0": hot, "t1": victim},
                      hot_tenant="t0", evict_reasons={"shed": 6})
        assert not fired(run, "tenant_isolation")


class TestLossAccounted:
    def test_unknown_drop_reason_fires(self):
        run = history(drop_reasons={"cosmic_rays": 3})
        assert fired(run, "loss_accounted")

    def test_unknown_evict_reason_fires(self):
        run = history(evict_reasons={"gremlins": 1})
        assert fired(run, "loss_accounted")

    def test_known_reasons_pass(self):
        run = history(
            drop_reasons={sim_metrics.DROP_LINK_DOWN: 5,
                          "chaos_drop": 2, "corrupt_batch": 1},
            evict_reasons={})
        assert not fired(run, "loss_accounted")
