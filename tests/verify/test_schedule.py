"""Tests for the FaultSchedule vocabulary, generator and validator."""

import json

import pytest

from repro.core.delivery import (CHURN_KILL, CHURN_KILL_MASTER,
                                 CHURN_PARTITION, CHURN_REJOIN,
                                 CHURN_RESTART_MASTER, ChurnSchedule)
from repro.core.exceptions import RuntimeStateError
from repro.verify.schedule import (CHAOS_CORRUPT, CHAOS_DROP, LOAD_BURST,
                                   FaultEvent, FaultSchedule, RunProfile,
                                   ScheduleSpec)


class TestFaultEvent:
    def test_point_event_round_trips(self):
        event = FaultEvent(time=4.0, action=CHURN_KILL, target="B")
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_action_rejected(self):
        with pytest.raises(RuntimeStateError):
            FaultEvent(time=1.0, action="meteor_strike", target="B")

    def test_window_needs_positive_duration(self):
        with pytest.raises(RuntimeStateError):
            FaultEvent(time=1.0, action=CHAOS_DROP, target="A>B",
                       duration=0.0, value=0.1)

    def test_point_action_rejects_duration(self):
        with pytest.raises(RuntimeStateError):
            FaultEvent(time=1.0, action=CHURN_KILL, target="B",
                       duration=2.0)

    def test_probability_bounds(self):
        with pytest.raises(RuntimeStateError):
            FaultEvent(time=1.0, action=CHAOS_DROP, target="A>B",
                       duration=2.0, value=1.5)

    def test_end_property(self):
        event = FaultEvent(time=3.0, action=CHAOS_DROP, target="A>B",
                           duration=2.5, value=0.1)
        assert event.end == pytest.approx(5.5)


class TestGenerateDeterminism:
    def test_same_seed_byte_identical_json(self):
        for seed in range(25):
            first = FaultSchedule.generate(seed).to_json()
            second = FaultSchedule.generate(seed).to_json()
            assert first == second, "seed %d not deterministic" % seed

    def test_json_round_trip_is_identity(self):
        schedule = FaultSchedule.generate(11)
        clone = FaultSchedule.from_json(schedule.to_json())
        assert clone.to_json() == schedule.to_json()
        assert list(clone) == list(schedule)
        assert clone.profile == schedule.profile

    def test_different_seeds_differ_somewhere(self):
        stories = {FaultSchedule.generate(seed).to_json()
                   for seed in range(25)}
        assert len(stories) > 1

    def test_unknown_version_rejected(self):
        data = FaultSchedule.generate(1).to_dict()
        data["version"] = 99
        with pytest.raises(RuntimeStateError):
            FaultSchedule.from_dict(data)


class TestGeneratedSchedulesValidate:
    def test_first_sixty_seeds_compose_legally(self):
        for seed in range(60):
            schedule = FaultSchedule.generate(seed)
            schedule.validate()  # must not raise
            assert len(schedule) >= 1
            assert schedule.end_time() <= schedule.spec.duration

    def test_events_stay_inside_fault_window(self):
        for seed in range(30):
            schedule = FaultSchedule.generate(seed)
            spec = schedule.spec
            for event in schedule:
                assert event.time >= spec.start_after
                assert max(event.time, event.end) <= spec.window_end


class TestProjections:
    def test_churn_view_holds_only_point_events(self):
        schedule = FaultSchedule.generate(13)
        churn = schedule.churn_view()
        assert isinstance(churn, ChurnSchedule)
        window_count = len(list(schedule.window_events()))
        assert len(churn) + window_count == len(schedule)

    def test_atoms_partition_the_schedule(self):
        schedule = FaultSchedule.generate(13)
        assert schedule.subset(schedule.atoms()).to_json() == \
            schedule.to_json()
        assert len(FaultSchedule.generate(13).subset(()).events) == 0

    def test_subset_keeps_pairs_together(self):
        # Find a seed whose schedule carries a kill+rejoin pair.
        for seed in range(40):
            schedule = FaultSchedule.generate(seed)
            kills = [event for event in schedule
                     if event.action == CHURN_KILL]
            if not kills:
                continue
            atom = kills[0].atom
            subset = schedule.subset((atom,))
            actions = sorted(event.action for event in subset)
            assert actions == sorted([CHURN_KILL, CHURN_REJOIN])
            subset.validate()
            return
        pytest.fail("no seed under 40 produced a kill pair")


class TestCompositionRules:
    def _spec(self):
        return ScheduleSpec()

    def test_unpaired_partition_rejected(self):
        schedule = FaultSchedule(
            events=(FaultEvent(time=10.0, action=CHURN_PARTITION,
                               target="A>B"),),
            spec=self._spec())
        with pytest.raises(RuntimeStateError):
            schedule.validate()

    def test_master_outage_must_not_overlap_other_faults(self):
        events = (
            FaultEvent(time=10.0, action=CHURN_KILL_MASTER, target="A"),
            FaultEvent(time=11.0, action=CHURN_KILL, target="B", atom=1),
            FaultEvent(time=13.0, action=CHURN_RESTART_MASTER,
                       target="A"),
            FaultEvent(time=14.0, action=CHURN_REJOIN, target="B",
                       atom=1),
        )
        with pytest.raises(RuntimeStateError):
            FaultSchedule(events=events, spec=self._spec()).validate()

    def test_all_workers_churned_rejected(self):
        spec = self._spec()
        events = []
        for index, worker in enumerate(spec.workers):
            events.append(FaultEvent(time=10.0 + index, action=CHURN_KILL,
                                     target=worker, atom=index))
            events.append(FaultEvent(time=20.0 + index,
                                     action=CHURN_REJOIN, target=worker,
                                     atom=index))
        with pytest.raises(RuntimeStateError):
            FaultSchedule(events=tuple(events), spec=spec).validate()

    def test_load_burst_must_target_a_known_worker(self):
        schedule = FaultSchedule(
            events=(FaultEvent(time=10.0, action=LOAD_BURST, target="Z",
                               duration=3.0, value=0.5),),
            spec=self._spec())
        with pytest.raises(RuntimeStateError):
            schedule.validate()

    def test_window_past_fault_window_rejected(self):
        spec = self._spec()
        schedule = FaultSchedule(
            events=(FaultEvent(time=spec.window_end - 1.0,
                               action=CHAOS_CORRUPT, target="A>B",
                               duration=5.0, value=0.05),),
            spec=spec)
        with pytest.raises(RuntimeStateError):
            schedule.validate()

    def test_keyed_profile_excludes_tenants(self):
        with pytest.raises(RuntimeStateError):
            RunProfile(keyed=True, tenant_count=2)


class TestCanonicalJson:
    def test_json_is_sorted_and_compact(self):
        encoded = FaultSchedule.generate(5).to_json()
        decoded = json.loads(encoded)
        assert json.dumps(decoded, sort_keys=True,
                          separators=(",", ":")) == encoded
