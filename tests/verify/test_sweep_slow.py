"""Long verification soaks — the Jepsen-style confidence runs.

Marked ``slow``: the default CI lane skips these; the slow lane and the
nightly workflow run them.  The full 200-schedule double-substrate soak
(ISSUE acceptance) is the nightly's job; here the simulator takes the
whole sweep and the threaded runtime a stratified slice, which keeps
the slow lane under a few minutes while still exercising every fault
vocabulary entry on both substrates.
"""

import pytest

from repro.verify import adapters, explorer

pytestmark = pytest.mark.slow


class TestLongSoak:
    def test_200_schedule_sim_sweep_is_clean(self):
        failures = []
        for start in (1, 51, 101, 151):  # 4 x 50, bounded memory
            report = explorer.explore(50, seed=start,
                                      shrink_failures=False)
            failures.extend(
                (record.seed, [violation.invariant
                               for violation in record.violations])
                for record in report.runs if not record.ok)
        assert failures == [], \
            "%d/200 schedules violated invariants: %s" \
            % (len(failures), failures[:5])

    def test_runtime_slice_is_clean(self):
        report = explorer.explore(12, seed=1,
                                  substrates=(adapters.RUNTIME,),
                                  shrink_failures=False)
        bad = [(record.seed, [violation.invariant
                              for violation in record.violations])
               for record in report.runs if not record.ok]
        assert bad == [], bad
