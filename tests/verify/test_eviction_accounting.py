"""Replay-buffer byte-bound evictions during a long partition must be
loud (counted under ``swing_replay_evicted_total{reason=bytes}``) and
the invariant checker must classify them as *accounted* loss — never
silent, never double-booked."""

from repro import metrics as metrics_mod
from repro.core.delivery import (AT_LEAST_ONCE, CHURN_HEAL,
                                 CHURN_PARTITION, EVICT_BYTES,
                                 DeliveryConfig)
from repro.simulation import scenarios
from repro.simulation.swarm import SwarmSimulation
from repro.verify import adapters
from repro.verify.invariants import InvariantChecker
from repro.verify.schedule import FaultEvent, FaultSchedule, ScheduleSpec

#: one captured frame's weight against the replay byte bound
FRAME_BYTES = scenarios.workload_for_app(adapters.FACE_APP).frame_bytes


def partition_schedule() -> FaultSchedule:
    """Cut every source link for 12 simulated seconds, then heal."""
    spec = ScheduleSpec()
    events = []
    for atom, worker in enumerate(spec.workers):
        link = "%s>%s" % (spec.source_id, worker)
        events.append(FaultEvent(time=8.0 + 0.1 * atom,
                                 action=CHURN_PARTITION, target=link,
                                 atom=atom))
        events.append(FaultEvent(time=20.0 + 0.1 * atom,
                                 action=CHURN_HEAL, target=link,
                                 atom=atom))
    schedule = FaultSchedule(events=tuple(events), spec=spec)
    schedule.validate()
    return schedule


def run_partitioned(replay_bytes):
    delivery = DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=4096,
                              replay_bytes=replay_bytes,
                              max_delivery_attempts=99,
                              redelivery_timeout=8.0,
                              dedup_window=8192)
    schedule = partition_schedule()
    sim = SwarmSimulation(adapters.build_sim_config(schedule,
                                                    delivery=delivery))
    result = sim.run()
    retained = {tenant: adapters._retained_seqs(
                    state.controller.export_retention())
                for tenant, state in sim._states.items()}
    history = adapters.history_from_sim(
        schedule, result, queued=sim.pending_source_frames(),
        retained=retained)
    return result, history


class TestByteBoundEvictions:
    def test_byte_bound_evictions_are_loud(self):
        result, _history = run_partitioned(replay_bytes=FRAME_BYTES * 4)
        by_reason = dict(result.replay_evicted_by_reason)
        assert by_reason.get(EVICT_BYTES, 0) > 0, \
            "12s partition under a 4-frame replay bound evicted nothing: %r" \
            % by_reason
        # The counter carries an edge label too — loss is attributable.
        by_edge = result.registry.values_by_label(
            metrics_mod.REPLAY_EVICTED_TOTAL, "edge")
        assert sum(by_edge.values()) >= by_reason[EVICT_BYTES]

    def test_checker_classifies_evictions_as_accounted_loss(self):
        result, history = run_partitioned(replay_bytes=FRAME_BYTES * 4)
        assert dict(result.replay_evicted_by_reason).get(EVICT_BYTES, 0) > 0
        violations = InvariantChecker().check(history)
        assert violations == [], \
            [violation.message for violation in violations]

    def test_unbounded_buffer_never_evicts_by_bytes(self):
        result, history = run_partitioned(replay_bytes=None)
        assert EVICT_BYTES not in dict(result.replay_evicted_by_reason)
        assert InvariantChecker().check(history) == []

    def test_silencing_the_counter_trips_conservation(self):
        # Teeth: if the evictions were NOT counted, the same run would
        # be a conservation violation — the budget is exactly the loud
        # eviction count, nothing slacker.
        _result, history = run_partitioned(replay_bytes=FRAME_BYTES * 4)
        for ledger in history.tenants.values():
            ledger.evictions = 0
        history.evict_reasons = {}
        fired = {violation.invariant
                 for violation in InvariantChecker().check(history)}
        assert "tuple_conservation" in fired \
            or "at_least_once_completeness" in fired
