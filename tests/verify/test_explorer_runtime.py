"""Explorer runs on the threaded runtime substrate.

A couple of real schedules through ``SwingRuntime`` + ``ChaosFabric``;
the 200-schedule soak lives in ``test_sweep_slow.py`` (slow marker) and
the nightly CI job.
"""

from repro.verify import adapters, explorer


class TestRuntimeSubstrate:
    def test_small_runtime_sweep_is_clean(self):
        report = explorer.explore(2, seed=1,
                                  substrates=(adapters.RUNTIME,))
        assert len(report.runs) == 2
        for record in report.runs:
            assert record.substrate == adapters.RUNTIME
            assert record.ok, \
                "seed %d: %s" % (record.seed,
                                 [violation.message
                                  for violation in record.violations])

    def test_master_failover_schedule_survives_checks(self):
        # Seed 2 includes a master kill/restart pair: the history must
        # show a fenced recovery and still satisfy every invariant.
        schedule = None
        from repro.core.delivery import CHURN_KILL_MASTER
        from repro.verify.schedule import FaultSchedule
        for seed in range(1, 20):
            candidate = FaultSchedule.generate(seed)
            if any(event.action == CHURN_KILL_MASTER
                   for event in candidate):
                schedule = candidate
                break
        assert schedule is not None
        history = adapters.run_runtime(schedule)
        assert history.substrate == adapters.RUNTIME
        assert history.expected_recoveries >= 1
        assert history.recoveries >= history.expected_recoveries
        assert len(history.epochs) >= 2
        violations, _ = explorer.check_run(schedule, adapters.RUNTIME)
        assert violations == ()
