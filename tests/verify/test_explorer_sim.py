"""Explorer sweeps on the discrete-event substrate.

Includes the mutation test the acceptance bar demands: with the seeded
at-least-once bug enabled (``SWING_FAULT_SKIP_REDELIVERY``), the
explorer must find a violating schedule within 50 seeds and shrink it
to a handful of fault events that reproduce deterministically.
"""

import json

import pytest

from repro.verify import adapters, explorer
from repro.verify.invariants import InvariantChecker
from repro.verify.schedule import FaultSchedule


class TestCleanSweep:
    def test_small_sweep_is_clean(self):
        report = explorer.explore(6, seed=1)
        assert len(report.runs) == 6
        assert report.ok
        assert all(record.substrate == adapters.SIM
                   for record in report.runs)

    def test_same_seed_same_schedule_and_verdict(self):
        # The determinism pin: one seed => byte-identical schedule and
        # an identical verdict, twice over.
        seed = 9
        first_schedule = FaultSchedule.generate(seed)
        second_schedule = FaultSchedule.generate(seed)
        assert first_schedule.to_json() == second_schedule.to_json()
        first, first_notes = explorer.check_run(first_schedule,
                                                adapters.SIM)
        second, second_notes = explorer.check_run(second_schedule,
                                                  adapters.SIM)
        assert [violation.to_dict() for violation in first] == \
            [violation.to_dict() for violation in second]
        assert first_notes == second_notes

    def test_unknown_substrate_rejected(self):
        from repro.core.exceptions import RuntimeStateError
        with pytest.raises(RuntimeStateError):
            explorer.explore(1, seed=1, substrates=("quantum",))


class TestMutationHasTeeth:
    @pytest.fixture
    def seeded_bug(self, monkeypatch):
        monkeypatch.setenv("SWING_FAULT_SKIP_REDELIVERY", "1")

    def test_bug_found_within_50_seeds_and_shrinks_small(self, seeded_bug):
        case = None
        for offset in range(50):
            report = explorer.explore(1, seed=1 + offset)
            if not report.ok:
                case = report.failures[0]
                break
        assert case is not None, \
            "seeded redelivery bug survived 50 schedules undetected"
        invariants = {violation.invariant
                      for violation in case.violations}
        assert invariants & {"tuple_conservation",
                             "at_least_once_completeness"}
        # Minimal repro: the shrunk schedule must be tiny and still
        # structurally valid.
        assert len(case.shrunk) <= 5
        case.shrunk.validate()

    def test_shrunk_repro_replays_deterministically(self, seeded_bug,
                                                    tmp_path):
        report = explorer.explore(1, seed=1)
        assert not report.ok
        path = str(tmp_path / "repro.json")
        explorer.write_repro(report.failures[0], path)
        with open(path) as handle:
            on_disk = json.load(handle)
        assert on_disk["substrate"] == adapters.SIM
        first_case, first = explorer.replay(path)
        second_case, second = explorer.replay(path)
        assert first and second
        assert [violation.to_dict() for violation in first] == \
            [violation.to_dict() for violation in second]
        assert first_case.shrunk.to_json() == second_case.shrunk.to_json()

    def test_fix_clears_the_repro(self, seeded_bug, tmp_path,
                                  monkeypatch):
        report = explorer.explore(1, seed=1)
        path = str(tmp_path / "repro.json")
        explorer.write_repro(report.failures[0], path)
        # "Apply the fix" (unset the seeded bug): the repro must go
        # clean, which is exactly how a real fix is confirmed.
        monkeypatch.delenv("SWING_FAULT_SKIP_REDELIVERY")
        _case, violations = explorer.replay(path)
        assert violations == ()


class TestShrink:
    def test_shrink_drops_irrelevant_atoms(self, monkeypatch):
        monkeypatch.setenv("SWING_FAULT_SKIP_REDELIVERY", "1")
        schedule = FaultSchedule.generate(2)
        assert len(schedule.atoms()) >= 2
        shrunk = explorer.shrink(schedule, adapters.SIM)
        assert len(shrunk.atoms()) <= len(schedule.atoms())
        # The result must still fail — shrinking never loses the bug.
        violations, _ = explorer.check_run(shrunk, adapters.SIM,
                                           InvariantChecker())
        assert violations
