"""The keyed per-user aggregation sensing app, units and end to end."""

from collections import Counter

from repro.apps.sensing.pipeline import (AGGREGATE_SCHEMA, ZipfKeyStream,
                                         WindowedAggregateUnit,
                                         build_sensing_graph)
from repro.core.function_unit import UnitContext
from repro.core.keyed import KeyedConfig
from repro.core.tuples import DataTuple
from repro.runtime.app_runner import SwingRuntime


class TestZipfKeyStream:
    def test_deterministic_per_seed(self):
        a = [ZipfKeyStream(16, seed=3).draw() for _ in range(50)]
        b = [ZipfKeyStream(16, seed=3).draw() for _ in range(50)]
        assert a == b

    def test_skew_favours_low_ranks(self):
        counts = Counter(ZipfKeyStream(16, alpha=1.2, seed=1).draw()
                         for _ in range(2000))
        assert counts["user-0"] > counts.get("user-8", 0)
        # the head of a Zipf(1.2) over 16 keys carries >20% of the mass
        assert counts["user-0"] / 2000 > 0.2

    def test_keys_stay_in_population(self):
        stream = ZipfKeyStream(4, seed=0)
        assert {stream.draw() for _ in range(200)} <= {
            "user-0", "user-1", "user-2", "user-3"}


class TestWindowedAggregateUnit:
    def _drive(self, unit, readings):
        emitted = []
        clock = {"now": 0.0}
        unit.bind(UnitContext(unit_name="aggregate", instance_id="aggregate@T",
                              emit=emitted.append, now=lambda: clock["now"]))
        for now, user, reading in readings:
            clock["now"] = now
            unit.process_data(DataTuple(
                values={"user": user, "reading": reading}, seq=len(emitted),
                created_at=now, key=user))
        return emitted

    def test_emits_closed_windows_per_user(self):
        unit = WindowedAggregateUnit(window=1.0)
        emitted = self._drive(unit, [(0.1, "user-0", 2.0),
                                     (0.5, "user-0", 4.0),
                                     (1.2, "user-0", 9.0)])
        assert len(emitted) == 1
        window = emitted[0]
        assert window.schema is AGGREGATE_SCHEMA
        assert window.get_value("count") == 2
        assert window.get_value("mean") == 3.0
        assert window.get_value("user") == "user-0"

    def test_keys_do_not_interfere(self):
        unit = WindowedAggregateUnit(window=1.0)
        emitted = self._drive(unit, [(0.1, "user-0", 1.0),
                                     (1.2, "user-1", 1.0)])
        assert emitted == []  # user-1's first window is still open

    def test_declares_stateful(self):
        # the hosting worker keys off this to provision migratable state
        assert WindowedAggregateUnit.stateful is True


class TestSensingGraph:
    def test_graph_shape(self):
        graph = build_sensing_graph()
        assert graph.stages() == ["sensor", "aggregate", "collect"]

    def test_end_to_end_keyed_runtime(self):
        graph = build_sensing_graph(reading_count=60, key_count=8,
                                    alpha=1.2, window=0.2, seed=7)
        runtime = SwingRuntime(
            graph, worker_ids=["B", "C"], policy="RR", source_rate=120.0,
            seed=3, keyed=KeyedConfig(key_count=8, zipf_alpha=1.2,
                                      split_enabled=False))
        results = runtime.run(until_idle=1.0, timeout=60.0)
        assert results, "no windows closed"
        # every closed window is a real aggregate over [min, max]
        for window in results:
            assert window.get_value("count") >= 1
            assert (window.get_value("minimum") <= window.get_value("mean")
                    <= window.get_value("maximum"))
