"""Unit-level tests of the face app's function units (no runtime)."""

import pytest

from repro.apps.face.images import FaceGenerator, FrameSynthesizer, encode_frame
from repro.apps.face.pipeline import (CameraSource, DisplaySink,
                                      FaceDetectorUnit, FaceRecognizerUnit)
from repro.core.function_unit import UnitContext
from repro.core.tuples import DataTuple


def bind(unit):
    emitted = []
    unit.bind(UnitContext(unit_name="u", instance_id="u@X",
                          emit=emitted.append, now=lambda: 0.0))
    return emitted


@pytest.fixture(scope="module")
def generator():
    return FaceGenerator(4, seed=9)


class TestCameraSource:
    def test_emits_encoded_frames_then_exhausts(self, generator):
        source = CameraSource(generator, frame_count=3, seed=9)
        bind(source)
        frames = [source.generate() for _ in range(4)]
        assert frames[3] is None
        assert all(isinstance(f.get_value("frame"), bytes)
                   for f in frames[:3])
        assert [f.seq for f in frames[:3]] == [0, 1, 2]
        assert len(source.ground_truth) == 3

    def test_ground_truth_names_valid(self, generator):
        source = CameraSource(generator, frame_count=2, seed=9)
        bind(source)
        source.generate()
        known = {identity.name for identity in generator.identities}
        for names in source.ground_truth:
            assert set(names) <= known


class TestDetectorUnit:
    def test_finds_planted_face_box(self, generator):
        synth = FrameSynthesizer(generator, seed=9)
        image, placements = synth.frame(face_count=1)
        unit = FaceDetectorUnit(generator)
        emitted = bind(unit)
        unit.process_data(DataTuple(values={
            "frame": encode_frame(image),
            "height": image.shape[0], "width": image.shape[1]}, seq=0))
        boxes = emitted[0].get_value("boxes")
        assert boxes
        x, y, _size = boxes[0]
        assert abs(x - placements[0].x) <= 8
        assert abs(y - placements[0].y) <= 8

    def test_empty_frame_gives_empty_boxes(self, generator):
        synth = FrameSynthesizer(generator, seed=10)
        image, _ = synth.frame(face_count=0)
        unit = FaceDetectorUnit(generator)
        emitted = bind(unit)
        unit.process_data(DataTuple(values={
            "frame": encode_frame(image),
            "height": image.shape[0], "width": image.shape[1]}, seq=0))
        assert emitted[0].get_value("boxes") == []


class TestRecognizerUnit:
    def test_names_planted_identity(self, generator):
        synth = FrameSynthesizer(generator, seed=11)
        hits = 0
        unit = FaceRecognizerUnit(generator)
        emitted = bind(unit)
        for index in range(6):
            image, placements = synth.frame(face_count=1)
            placement = placements[0]
            unit.process_data(DataTuple(values={
                "frame": encode_frame(image),
                "height": image.shape[0], "width": image.shape[1],
                "boxes": [[placement.x, placement.y, placement.size]]},
                seq=index))
            if emitted[-1].get_value("names") == [placement.name]:
                hits += 1
        assert hits >= 4  # eigenfaces are imperfect but mostly right

    def test_out_of_bounds_box_skipped(self, generator):
        synth = FrameSynthesizer(generator, seed=12)
        image, _ = synth.frame(face_count=0)
        unit = FaceRecognizerUnit(generator)
        emitted = bind(unit)
        unit.process_data(DataTuple(values={
            "frame": encode_frame(image),
            "height": image.shape[0], "width": image.shape[1],
            "boxes": [[image.shape[1] - 5, image.shape[0] - 5, 32]]},
            seq=0))
        assert emitted[0].get_value("names") == []


class TestDisplaySink:
    def test_collects_names(self):
        sink = DisplaySink()
        bind(sink)
        sink.process_data(DataTuple(values={"names": ["person-01"]}, seq=0))
        sink.process_data(DataTuple(values={"names": []}, seq=1))
        assert sink.recognized_names() == [["person-01"], []]
