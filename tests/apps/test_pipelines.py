"""End-to-end tests for the two sensing-app pipelines on the runtime."""

import pytest

from repro.apps.face.pipeline import build_face_graph
from repro.apps.translate.pipeline import (MicrophoneSource,
                                           build_translation_graph,
                                           default_phrases)
from repro.runtime.app_runner import SwingRuntime


class TestFaceGraph:
    def test_graph_shape_matches_paper(self):
        graph = build_face_graph()
        assert graph.stages() == ["camera", "detector", "recognizer",
                                  "display"]

    def test_pipeline_recognizes_planted_faces(self):
        graph = build_face_graph(num_identities=4, frame_count=10, seed=3)
        runtime = SwingRuntime(graph, worker_ids=["B", "G"], policy="RR",
                               source_rate=60.0)
        results = runtime.run(until_idle=1.0, timeout=60.0)
        assert len(results) == 10
        names = [name for data in results for name in data.get_value("names")]
        assert names, "no faces recognized across 10 frames"
        assert all(name.startswith("person-") for name in names)

    def test_pipeline_under_lrs(self):
        graph = build_face_graph(num_identities=3, frame_count=8, seed=1)
        runtime = SwingRuntime(graph, worker_ids=["B", "G", "H"],
                               policy="LRS", source_rate=60.0)
        results = runtime.run(until_idle=1.0, timeout=60.0)
        assert len(results) == 8


class TestTranslationGraph:
    def test_graph_shape_matches_paper(self):
        graph = build_translation_graph()
        assert graph.stages() == ["microphone", "recognizer", "translator",
                                  "display"]

    def test_pipeline_translates_speech(self):
        graph = build_translation_graph(frame_count=6, seed=4)
        runtime = SwingRuntime(graph, worker_ids=["B", "G"], policy="RR",
                               source_rate=30.0)
        results = runtime.run(until_idle=1.0, timeout=60.0)
        assert len(results) == 6
        texts = [data.get_value("text") for data in results]
        assert all(isinstance(text, str) and text for text in texts)
        # Rule-based output should contain real Spanish words, not only
        # unknown-word markers.
        joined = " ".join(texts)
        assert "<" not in joined

    def test_default_phrases_use_known_vocabulary(self):
        from repro.apps.translate.translator import LEXICON
        for phrase in default_phrases(30, seed=1):
            for word in phrase:
                lemma_known = (word in LEXICON
                               or word.rstrip("s") in LEXICON
                               or word[:-2] in LEXICON)
                assert lemma_known, word

    def test_microphone_ground_truth_tracks_frames(self):
        source = MicrophoneSource(frame_count=3, seed=0)
        from repro.core.function_unit import UnitContext
        source.bind(UnitContext("microphone", "microphone@A",
                                emit=lambda data: None, now=lambda: 0.0))
        for _ in range(3):
            assert source.generate() is not None
        assert source.generate() is None
        assert len(source.ground_truth) == 3
