"""Tests for the sliding-window face detector."""

import numpy as np
import pytest

from repro.apps.face.detect import (Detection, FaceDetector,
                                    _non_maximum_suppression, build_template,
                                    crop)
from repro.apps.face.images import FaceGenerator, FrameSynthesizer
from repro.core.exceptions import SwingError


@pytest.fixture(scope="module")
def generator():
    return FaceGenerator(4, seed=7)


@pytest.fixture(scope="module")
def detector(generator):
    return FaceDetector(generator)


class TestDetection:
    def test_iou_identical(self):
        d = Detection(x=0, y=0, size=10, score=1.0)
        assert d.iou(d) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        a = Detection(x=0, y=0, size=10, score=1.0)
        b = Detection(x=100, y=100, size=10, score=1.0)
        assert a.iou(b) == 0.0

    def test_iou_partial_overlap(self):
        a = Detection(x=0, y=0, size=10, score=1.0)
        b = Detection(x=5, y=0, size=10, score=1.0)
        assert 0.0 < a.iou(b) < 1.0

    def test_box(self):
        assert Detection(x=3, y=4, size=5, score=0.5).box() == (3, 4, 5, 5)


class TestTemplate:
    def test_template_zero_mean_unit_norm(self, generator):
        template = build_template(generator)
        assert abs(template.mean()) < 1e-6
        assert np.linalg.norm(template) == pytest.approx(1.0, abs=1e-5)


class TestDetector:
    def test_detects_planted_face(self, generator, detector):
        synth = FrameSynthesizer(generator, seed=1)
        frame, placements = synth.frame(face_count=1)
        detections = detector.detect(frame)
        assert detections
        p = placements[0]
        best = detections[0]
        assert abs(best.x - p.x) <= detector.stride * 2
        assert abs(best.y - p.y) <= detector.stride * 2

    def test_no_faces_no_detections(self, generator, detector):
        synth = FrameSynthesizer(generator, seed=2)
        frame, _ = synth.frame(face_count=0)
        assert detector.detect(frame) == []

    def test_detects_multiple_faces(self, generator, detector):
        synth = FrameSynthesizer(generator, seed=3)
        found = 0
        planted = 0
        for _ in range(5):
            frame, placements = synth.frame(face_count=2)
            detections = detector.detect(frame)
            planted += len(placements)
            for p in placements:
                if any(abs(d.x - p.x) <= 8 and abs(d.y - p.y) <= 8
                       for d in detections):
                    found += 1
        assert found >= planted * 0.8

    def test_detections_sorted_by_score(self, generator, detector):
        synth = FrameSynthesizer(generator, seed=4)
        frame, _ = synth.frame(face_count=2)
        detections = detector.detect(frame)
        scores = [d.score for d in detections]
        assert scores == sorted(scores, reverse=True)

    def test_image_smaller_than_window(self, detector):
        tiny = np.zeros((8, 8), dtype=np.float32)
        assert detector.detect(tiny) == []

    def test_non_2d_rejected(self, detector):
        with pytest.raises(SwingError):
            detector.detect(np.zeros((4, 4, 3), dtype=np.float32))

    def test_invalid_parameters(self, generator):
        with pytest.raises(SwingError):
            FaceDetector(generator, threshold=0.0)
        with pytest.raises(SwingError):
            FaceDetector(generator, stride=0)

    def test_crop_returns_detection_window(self, generator, detector):
        synth = FrameSynthesizer(generator, seed=5)
        frame, _ = synth.frame(face_count=1)
        detections = detector.detect(frame)
        patch = crop(frame, detections[0])
        assert patch.shape == (detections[0].size, detections[0].size)


class TestNonMaximumSuppression:
    def test_overlapping_suppressed(self):
        candidates = [Detection(0, 0, 10, 0.9), Detection(1, 1, 10, 0.8)]
        kept = _non_maximum_suppression(candidates)
        assert len(kept) == 1
        assert kept[0].score == 0.9

    def test_disjoint_kept(self):
        candidates = [Detection(0, 0, 10, 0.9), Detection(50, 50, 10, 0.8)]
        assert len(_non_maximum_suppression(candidates)) == 2
