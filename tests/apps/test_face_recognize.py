"""Tests for the eigenfaces recognizer."""

import numpy as np
import pytest

from repro.apps.face.images import FaceGenerator
from repro.apps.face.recognize import EigenfaceRecognizer
from repro.core.exceptions import SwingError


@pytest.fixture(scope="module")
def generator():
    return FaceGenerator(5, seed=11)


@pytest.fixture(scope="module")
def trained(generator):
    recognizer = EigenfaceRecognizer(num_components=16)
    patches, labels = generator.gallery(samples_per_identity=8)
    recognizer.train(patches, labels)
    return recognizer


class TestTraining:
    def test_trained_flag(self, generator):
        recognizer = EigenfaceRecognizer()
        assert not recognizer.trained
        patches, labels = generator.gallery(samples_per_identity=2)
        recognizer.train(patches, labels)
        assert recognizer.trained

    def test_use_before_training_rejected(self):
        recognizer = EigenfaceRecognizer()
        with pytest.raises(SwingError):
            recognizer.recognize(np.zeros((32, 32)))

    def test_label_count_mismatch_rejected(self, generator):
        patches, labels = generator.gallery(samples_per_identity=2)
        with pytest.raises(SwingError):
            EigenfaceRecognizer().train(patches, labels[:-1])

    def test_wrong_dim_rejected(self):
        with pytest.raises(SwingError):
            EigenfaceRecognizer().train(np.zeros((4, 16)), ["a"] * 4)

    def test_too_few_patches_rejected(self):
        with pytest.raises(SwingError):
            EigenfaceRecognizer().train(np.zeros((1, 8, 8)), ["a"])

    def test_invalid_components(self):
        with pytest.raises(SwingError):
            EigenfaceRecognizer(num_components=0)


class TestRecognition:
    def test_recognizes_training_identities(self, generator, trained):
        correct = 0
        probes = 20
        for index in range(probes):
            identity = generator.identities[index % len(generator.identities)]
            patch = generator.render(identity, jitter=0.4)
            if trained.recognize(patch) == identity.name:
                correct += 1
        assert correct >= probes * 0.7

    def test_projection_dimension(self, trained):
        patch = np.zeros((32, 32), dtype=np.float32)
        assert trained.project(patch).shape == (16,)

    def test_shape_mismatch_rejected(self, trained):
        with pytest.raises(SwingError):
            trained.recognize(np.zeros((8, 8)))

    def test_reject_distance_returns_none(self, generator):
        recognizer = EigenfaceRecognizer(num_components=8,
                                         reject_distance=1e-9)
        patches, labels = generator.gallery(samples_per_identity=3)
        recognizer.train(patches, labels)
        noise = np.random.default_rng(0).random((32, 32)).astype(np.float32)
        assert recognizer.recognize(noise) is None

    def test_recognize_with_distance(self, generator, trained):
        patch = generator.render(generator.identities[0], jitter=0.2)
        name, distance = trained.recognize_with_distance(patch)
        assert name is not None
        assert distance >= 0.0

    def test_reconstruction_close_to_original(self, generator, trained):
        identity = generator.identities[0]
        patch = generator.render(identity, jitter=0.0, noise=0.0)
        reconstructed = trained.reconstruct(patch)
        error = np.abs(reconstructed - patch).mean()
        assert error < 0.15  # eigenspace captures most structure

    def test_component_cap(self, generator):
        recognizer = EigenfaceRecognizer(num_components=10_000)
        patches, labels = generator.gallery(samples_per_identity=2)
        recognizer.train(patches, labels)
        # Cannot have more components than training samples.
        assert recognizer.project(patches[0]).shape[0] <= len(labels)


class TestEnrollment:
    def test_enroll_new_identity_recognized(self, generator):
        # Train on the first 4 identities only; enroll the 5th online.
        recognizer = EigenfaceRecognizer(num_components=16)
        known = generator.identities[:4]
        patches, labels = [], []
        for identity in known:
            for _ in range(6):
                patches.append(generator.render(identity, jitter=0.5))
                labels.append(identity.name)
        recognizer.train(np.stack(patches), labels)

        newcomer = generator.identities[4]
        gallery = np.stack([generator.render(newcomer, jitter=0.4)
                            for _ in range(6)])
        recognizer.enroll(gallery, newcomer.name)
        assert newcomer.name in recognizer.known_labels()

        hits = sum(1 for _ in range(10)
                   if recognizer.recognize(
                       generator.render(newcomer, jitter=0.3))
                   == newcomer.name)
        assert hits >= 6

    def test_enroll_single_patch(self, generator, trained):
        import copy
        recognizer = copy.deepcopy(trained)
        patch = generator.render(generator.identities[0])
        recognizer.enroll(patch, "guest")
        assert "guest" in recognizer.known_labels()

    def test_enroll_before_training_rejected(self):
        recognizer = EigenfaceRecognizer()
        with pytest.raises(SwingError):
            recognizer.enroll(np.zeros((2, 8, 8)), "x")

    def test_enroll_validation(self, trained):
        with pytest.raises(SwingError):
            trained.enroll(np.zeros((2, 2, 8, 8)), "x")
        with pytest.raises(SwingError):
            trained.enroll(np.zeros((32, 32)), "")
