"""Tests for synthetic face imagery."""

import numpy as np
import pytest

from repro.apps.face.images import (FACE_SIZE, FRAME_HEIGHT, FRAME_WIDTH,
                                    FaceGenerator, FrameSynthesizer,
                                    decode_frame, encode_frame)
from repro.core.exceptions import SwingError


class TestFaceGenerator:
    def test_identities_deterministic_per_seed(self):
        first = FaceGenerator(4, seed=1)
        second = FaceGenerator(4, seed=1)
        assert [i.name for i in first.identities] == \
            [i.name for i in second.identities]
        assert np.allclose(first.identities[0].as_vector(),
                           second.identities[0].as_vector())

    def test_distinct_identities_differ(self):
        generator = FaceGenerator(4, seed=1)
        a, b = generator.identities[:2]
        assert not np.allclose(a.as_vector(), b.as_vector())

    def test_render_shape_and_range(self):
        generator = FaceGenerator(2, seed=0)
        patch = generator.render(generator.identities[0])
        assert patch.shape == (FACE_SIZE, FACE_SIZE)
        assert patch.dtype == np.float32
        assert 0.0 <= patch.min() and patch.max() <= 1.0

    def test_render_has_facial_structure(self):
        generator = FaceGenerator(2, seed=0)
        patch = generator.render(generator.identities[0], noise=0.0)
        center = patch[FACE_SIZE // 2 - 4:FACE_SIZE // 2 + 4,
                       FACE_SIZE // 2 - 4:FACE_SIZE // 2 + 4]
        corner = patch[:4, :4]
        assert center.mean() > corner.mean()  # head brighter than background

    def test_jitter_varies_rendering(self):
        generator = FaceGenerator(2, seed=0)
        identity = generator.identities[0]
        a = generator.render(identity, jitter=0.8)
        b = generator.render(identity, jitter=0.8)
        assert not np.array_equal(a, b)

    def test_gallery_has_labels_per_patch(self):
        generator = FaceGenerator(3, seed=0)
        patches, labels = generator.gallery(samples_per_identity=4)
        assert patches.shape == (12, FACE_SIZE, FACE_SIZE)
        assert len(labels) == 12
        assert len(set(labels)) == 3

    def test_lookup_identity(self):
        generator = FaceGenerator(2, seed=0)
        assert generator.identity("person-01").name == "person-01"
        with pytest.raises(SwingError):
            generator.identity("nobody")

    def test_zero_identities_rejected(self):
        with pytest.raises(SwingError):
            FaceGenerator(0)


class TestFrameSynthesizer:
    def test_frame_shape(self):
        synth = FrameSynthesizer(FaceGenerator(2, seed=0), seed=0)
        frame, placements = synth.frame()
        assert frame.shape == (FRAME_HEIGHT, FRAME_WIDTH)
        assert len(placements) == 1

    def test_placements_inside_frame(self):
        synth = FrameSynthesizer(FaceGenerator(4, seed=0), seed=0)
        for _ in range(10):
            _frame, placements = synth.frame(face_count=2)
            for placement in placements:
                assert 0 <= placement.x <= FRAME_WIDTH - placement.size
                assert 0 <= placement.y <= FRAME_HEIGHT - placement.size

    def test_empty_frame(self):
        synth = FrameSynthesizer(FaceGenerator(2, seed=0), seed=0)
        _frame, placements = synth.frame(face_count=0)
        assert placements == []

    def test_stream_yields_count(self):
        synth = FrameSynthesizer(FaceGenerator(2, seed=0), seed=0)
        assert len(list(synth.stream(5))) == 5

    def test_face_region_matches_rendered_patch_brightness(self):
        synth = FrameSynthesizer(FaceGenerator(2, seed=0), seed=0)
        frame, placements = synth.frame(face_count=1)
        p = placements[0]
        region = frame[p.y:p.y + p.size, p.x:p.x + p.size]
        assert region.std() > 0.1  # faces are high-contrast vs background


class TestFrameCodec:
    def test_roundtrip_close(self):
        synth = FrameSynthesizer(FaceGenerator(2, seed=0), seed=0)
        frame, _ = synth.frame()
        decoded = decode_frame(encode_frame(frame))
        assert decoded.shape == frame.shape
        assert np.abs(decoded - frame).max() <= 1.0 / 255.0 + 1e-6

    def test_encoded_size_fixed(self):
        synth = FrameSynthesizer(FaceGenerator(2, seed=0), seed=0)
        frame, _ = synth.frame()
        assert len(encode_frame(frame)) == FRAME_HEIGHT * FRAME_WIDTH

    def test_decode_wrong_size_rejected(self):
        with pytest.raises(SwingError):
            decode_frame(b"short")

    def test_encode_requires_2d(self):
        with pytest.raises(SwingError):
            encode_frame(np.zeros((2, 2, 3), dtype=np.float32))
