"""Tests for synthetic speech audio and the recognizer."""

import numpy as np
import pytest

from repro.apps.translate.asr import SpeechRecognizer, recognition_accuracy
from repro.apps.translate.audio import (GAP_SECONDS, SAMPLE_RATE,
                                        SEGMENT_SECONDS, SEGMENTS_PER_WORD,
                                        decode_audio, encode_audio,
                                        synthesize_utterance, synthesize_word,
                                        word_signature)
from repro.apps.translate.translator import Translator
from repro.core.exceptions import SwingError


class TestWordSignature:
    def test_deterministic(self):
        assert word_signature("house") == word_signature("house")

    def test_case_insensitive(self):
        assert word_signature("House") == word_signature("house")

    def test_has_expected_length(self):
        assert len(word_signature("car")) == SEGMENTS_PER_WORD

    def test_distinct_words_usually_differ(self):
        words = ["car", "house", "dog", "phone", "water", "street"]
        signatures = {word_signature(word) for word in words}
        assert len(signatures) == len(words)

    def test_frequencies_in_band(self):
        for tone in word_signature("battery"):
            assert 400.0 <= tone <= 3400.0

    def test_empty_word_rejected(self):
        with pytest.raises(SwingError):
            word_signature("")


class TestSynthesis:
    def test_word_duration(self):
        waveform = synthesize_word("car")
        expected = int(SAMPLE_RATE * SEGMENT_SECONDS) * SEGMENTS_PER_WORD
        assert len(waveform) == expected

    def test_utterance_longer_than_words(self):
        one = synthesize_utterance(["car"])
        two = synthesize_utterance(["car", "house"])
        assert len(two) > len(one)

    def test_empty_utterance_rejected(self):
        with pytest.raises(SwingError):
            synthesize_utterance([])

    def test_waveform_bounded(self):
        waveform = synthesize_utterance(["car", "dog"], noise=0.05)
        assert np.abs(waveform).max() < 1.5


class TestAudioCodec:
    def test_roundtrip_close(self):
        waveform = synthesize_utterance(["house"])
        decoded = decode_audio(encode_audio(waveform))
        assert np.abs(decoded - np.clip(waveform, -1, 1)).max() < 1e-3

    def test_pcm_size(self):
        waveform = synthesize_word("car")
        assert len(encode_audio(waveform)) == 2 * len(waveform)

    def test_odd_length_rejected(self):
        with pytest.raises(SwingError):
            decode_audio(b"\x00")


class TestSpeechRecognizer:
    @pytest.fixture(scope="class")
    def recognizer(self):
        return SpeechRecognizer(Translator().vocabulary())

    def test_single_word(self, recognizer):
        waveform = synthesize_utterance(["house"], seed=1)
        assert recognizer.recognize(waveform) == ["house"]

    def test_multi_word_sequence(self, recognizer):
        phrase = ["the", "red", "car", "runs"]
        waveform = synthesize_utterance(phrase, seed=2)
        assert recognizer.recognize(waveform) == phrase

    def test_robust_to_noise(self, recognizer):
        phrase = ["my", "phone", "works"]
        waveform = synthesize_utterance(phrase, noise=0.05, seed=3)
        assert recognizer.recognize(phrase and waveform) == phrase

    def test_adaptive_vad_handles_loud_noise_floor(self, recognizer):
        # Noise floor above the absolute threshold: the adaptive
        # quietest-decile estimate must keep segmentation working.
        phrase = ["the", "big", "house"]
        waveform = synthesize_utterance(phrase, noise=0.10, seed=4)
        assert recognizer.recognize(waveform) == phrase

    def test_floor_factor_validated(self):
        from repro.core.exceptions import SwingError
        with pytest.raises(SwingError):
            SpeechRecognizer(["car"], floor_factor=0.5)

    def test_silence_recognized_as_nothing(self, recognizer):
        silence = np.zeros(SAMPLE_RATE, dtype=np.float32)
        assert recognizer.recognize(silence) == []

    def test_pure_noise_rejected(self, recognizer):
        noise = (np.random.default_rng(0)
                 .normal(0, 0.02, SAMPLE_RATE).astype(np.float32))
        assert recognizer.recognize(noise) == []

    def test_accuracy_metric(self, recognizer):
        utterances = []
        for index, phrase in enumerate([["big", "dog"], ["old", "house"]]):
            utterances.append((phrase,
                               synthesize_utterance(phrase, seed=index)))
        assert recognition_accuracy(recognizer, utterances) == 1.0

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(SwingError):
            SpeechRecognizer([])

    def test_non_1d_rejected(self, recognizer):
        with pytest.raises(SwingError):
            recognizer.recognize(np.zeros((10, 10)))

    def test_word_level_accuracy_high(self, recognizer):
        from repro.apps.translate.pipeline import default_phrases
        phrases = default_phrases(15, seed=9)
        correct = total = 0
        for index, phrase in enumerate(phrases):
            recognized = recognizer.recognize(
                synthesize_utterance(phrase, seed=index))
            total += len(phrase)
            correct += sum(1 for a, b in zip(phrase, recognized) if a == b)
        assert correct / total >= 0.9
