"""Tests for the rule-based EN->ES translator."""

import pytest

from repro.apps.translate.translator import (LEXICON, Translator,
                                             spanish_plural)
from repro.core.exceptions import SwingError


@pytest.fixture(scope="module")
def translator():
    return Translator()


class TestLexicalTranslation:
    def test_simple_words(self, translator):
        assert translator.translate("hello") == "hola"
        assert translator.translate("water") == "agua"

    def test_sentence_word_by_word(self, translator):
        assert translator.translate("we need water") == \
            "nosotros necesita agua"

    def test_verb_third_person_s(self, translator):
        assert translator.translate("he runs") == "él corre"

    def test_punctuation_stripped(self, translator):
        assert translator.translate("hello.") == "hola"

    def test_case_insensitive(self, translator):
        assert translator.translate("Hello") == "hola"

    def test_unknown_word_marked(self, translator):
        assert translator.translate("xylophone") == "<xylophone>"

    def test_unknown_word_unmarked_mode(self):
        translator = Translator(mark_unknown=False)
        assert translator.translate("xylophone") == "xylophone"

    def test_accepts_word_lists(self, translator):
        assert translator.translate(["the", "dog"]) == "el perro"


class TestAdjectiveReordering:
    def test_adjective_follows_noun(self, translator):
        assert translator.translate("red car") == "coche rojo"

    def test_article_adjective_noun(self, translator):
        assert translator.translate("the red car") == "el coche rojo"

    def test_gender_agreement_feminine(self, translator):
        assert translator.translate("the red house") == "la casa roja"

    def test_invariant_adjective(self, translator):
        assert translator.translate("the big house") == "la casa grande"

    def test_adjective_without_noun_stays(self, translator):
        assert translator.translate("he is fast") == "él es rápido"


class TestArticleAgreement:
    def test_masculine_definite(self, translator):
        assert translator.translate("the dog") == "el perro"

    def test_feminine_definite(self, translator):
        assert translator.translate("the house") == "la casa"

    def test_plural_definite(self, translator):
        assert translator.translate("the dogs") == "los perros"
        assert translator.translate("the houses") == "las casas"

    def test_indefinite(self, translator):
        assert translator.translate("a dog") == "un perro"
        assert translator.translate("a house") == "una casa"


class TestPlurals:
    def test_regular_noun_plural(self, translator):
        assert translator.translate("dogs") == "perros"

    def test_es_plural(self, translator):
        assert "señal" in translator.translate("signal")

    def test_irregular_plural(self, translator):
        assert translator.translate("the women") == "las mujeres"
        assert translator.translate("the men") == "los hombres"

    def test_consonant_final_plural_rule(self):
        assert spanish_plural("señal") == "señales"
        assert spanish_plural("casa") == "casas"

    def test_empty_plural_rejected(self):
        with pytest.raises(SwingError):
            spanish_plural("")

    def test_plural_adjective_agreement(self, translator):
        assert translator.translate("the small dogs") == \
            "los perros pequeños"


class TestVocabulary:
    def test_vocabulary_covers_lexicon(self, translator):
        vocabulary = translator.vocabulary()
        assert set(vocabulary) == set(LEXICON)
        assert len(vocabulary) > 80

    def test_full_sentences(self, translator):
        cases = {
            "the red car runs now": "el coche rojo corre ahora",
            "my house is very big": "mi casa es muy grande",
            "we need the new phone": "nosotros necesita el teléfono nuevo",
        }
        for english, spanish in cases.items():
            assert translator.translate(english) == spanish
