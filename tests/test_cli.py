"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.trace import read_jsonl, validate_chrome_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_testbed_defaults(self):
        args = build_parser().parse_args(["testbed"])
        assert args.policy == "LRS"
        assert args.app == "face_recognition"
        assert args.duration == 60.0

    def test_app_alias_translation(self):
        args = build_parser().parse_args(["testbed", "--app", "translation"])
        assert args.app == "voice_translation"

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["testbed", "--app", "weather"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["testbed", "--policy", "FIFO"])

    def test_extension_policies_accepted(self):
        args = build_parser().parse_args(["testbed", "--policy", "JSQ"])
        assert args.policy == "JSQ"


class TestCommands:
    def test_testbed_summary(self, capsys):
        assert main(["testbed", "--duration", "8", "--policy", "LRS"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "FPS" in out
        assert "aggregate power" in out

    def test_single_decomposition(self, capsys):
        assert main(["single", "--device", "B", "--rate", "4",
                     "--duration", "5", "--signal", "poor"]) == 0
        out = capsys.readouterr().out
        assert "transmission" in out
        assert "processing" in out

    @pytest.mark.parametrize("mode", ["join", "leave", "move"])
    def test_dynamics_modes(self, capsys, mode):
        assert main(["dynamics", "--mode", mode]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_compare_with_seeds(self, capsys):
        assert main(["compare", "--duration", "6", "--seeds", "0", "1"]) == 0
        out = capsys.readouterr().out
        for policy in ("RR", "PR", "LR", "PRS", "LRS"):
            assert policy in out
        assert "±" in out

    def test_cloudlet(self, capsys):
        assert main(["cloudlet", "--duration", "8"]) == 0
        out = capsys.readouterr().out
        assert "phones only" in out
        assert "with cloudlet" in out


class TestCsvOption:
    def test_trace_written(self, capsys, tmp_path):
        path = tmp_path / "trace.csv"
        assert main(["testbed", "--duration", "5", "--csv", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("seq,device_id")
        assert text.count("\n") > 50


class TestTraceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.scenario == "single"
        assert args.sample_rate == 1.0
        assert args.out == "swing.trace.json"

    def test_sample_rate_validated(self):
        with pytest.raises(SystemExit):
            main(["trace", "--sample-rate", "1.5"])

    def test_trace_artifacts_written(self, capsys, tmp_path):
        out = tmp_path / "run.trace.json"
        jsonl = tmp_path / "spans.jsonl"
        metrics_path = tmp_path / "metrics.json"
        assert main(["trace", "--duration", "4",
                     "--out", str(out), "--jsonl", str(jsonl),
                     "--metrics-json", str(metrics_path)]) == 0
        printed = capsys.readouterr().out
        assert "measured" in printed
        assert "analytic" in printed

        trace = json.loads(out.read_text())
        assert validate_chrome_trace(trace)
        assert read_jsonl(jsonl)
        metrics_doc = json.loads(metrics_path.read_text())
        assert "metrics" in metrics_doc
        assert "trace" in metrics_doc
        assert metrics_doc["metrics"]["histograms"]

    def test_testbed_scenario_supported(self, capsys, tmp_path):
        out = tmp_path / "tb.trace.json"
        assert main(["trace", "--scenario", "testbed", "--duration", "6",
                     "--sample-rate", "0.5", "--out", str(out)]) == 0
        assert validate_chrome_trace(json.loads(out.read_text()))


class TestSkewCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["skew"])
        assert args.keys == 64
        assert args.alpha == 1.2
        assert not args.static
        assert not args.best_effort

    def test_splitting_run_summary(self, capsys):
        assert main(["skew", "--duration", "12"]) == 0
        out = capsys.readouterr().out
        assert "hot-range splitting" in out
        assert "range splits" in out
        assert "end-to-end lost" in out

    def test_static_baseline_mode(self, capsys):
        assert main(["skew", "--duration", "8", "--static"]) == 0
        out = capsys.readouterr().out
        assert "static hash routing" in out

    def test_metrics_json_carries_keyed_families(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["skew", "--duration", "12",
                     "--metrics-json", str(path)]) == 0
        doc = json.loads(path.read_text())
        counters = doc["metrics"]["counters"]
        assert any(name.startswith("swing_hot_keys_detected_total")
                   for name in counters)
        assert any(name.startswith("swing_key_range_moves_total")
                   for name in counters)
        assert any(name.startswith("swing_state_migration_seconds")
                   for name in doc["metrics"]["histograms"])


class TestMetricsJsonOption:
    def test_single_dumps_registry(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["single", "--device", "B", "--duration", "3",
                     "--metrics-json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert set(doc) >= {"metrics"}
        assert "counters" in doc["metrics"]

    def test_testbed_dumps_registry(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["testbed", "--duration", "5",
                     "--metrics-json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert any(name.startswith("swing_")
                   for name in doc["metrics"]["counters"])


class TestVerifyCommand:
    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["verify", "--schedules", "2", "--seed", "1",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_violation_exits_one_and_writes_repro(self, tmp_path,
                                                  monkeypatch, capsys):
        monkeypatch.setenv("SWING_FAULT_SKIP_REDELIVERY", "1")
        repro = tmp_path / "repro.json"
        code = main(["verify", "--schedules", "1", "--seed", "1",
                     "--quiet", "--out", str(repro)])
        assert code == 1
        assert repro.exists()
        doc = json.loads(repro.read_text())
        assert doc["substrate"] == "sim"
        assert doc["violations"]
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_replay_reproduces_then_clears(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("SWING_FAULT_SKIP_REDELIVERY", "1")
        repro = tmp_path / "repro.json"
        assert main(["verify", "--schedules", "1", "--seed", "1",
                     "--quiet", "--out", str(repro)]) == 1
        capsys.readouterr()
        assert main(["verify", "--replay", str(repro), "--quiet"]) == 1
        # The "fix" (bug flag unset) turns the same repro clean: exit 0.
        monkeypatch.delenv("SWING_FAULT_SKIP_REDELIVERY")
        assert main(["verify", "--replay", str(repro), "--quiet"]) == 0

    def test_usage_error_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["verify", "--substrate", "quantum"])
        assert exc.value.code == 2
