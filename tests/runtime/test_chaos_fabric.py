"""Tests for the deterministic link-fault injector (ChaosFabric)."""

import time

import pytest

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError
from repro.runtime.chaos import ChaosFabric, LinkChaos
from repro.runtime.channels import ChannelClosed
from repro.runtime.fabric import InProcFabric
from repro.runtime.messages import DATA, data_message


def make_fabric(seed=0, default=None):
    registry = metrics_mod.MetricsRegistry()
    fabric = ChaosFabric(InProcFabric(), seed=seed, default=default,
                         registry=registry)
    inbox = fabric.register("B")
    fabric.register("A")
    return fabric, inbox, registry


def send_n(fabric, count, sender="A", target="B"):
    for seq in range(count):
        fabric.send(sender, target,
                    data_message("detect", b"payload", seq, 0.0))


def drain(inbox):
    messages = []
    while len(inbox):
        messages.append(inbox.get(timeout=0.1)[1])
    return messages


class TestLinkChaos:
    @pytest.mark.parametrize("kwargs", [
        {"drop": -0.1}, {"drop": 1.5}, {"duplicate": 2.0},
        {"corrupt": -1.0}, {"delay": 1.01}, {"delay_seconds": -0.1},
    ])
    def test_bad_probabilities_rejected(self, kwargs):
        with pytest.raises(RuntimeStateError):
            LinkChaos(**kwargs)

    def test_active_flag(self):
        assert not LinkChaos().active
        assert not LinkChaos(delay_seconds=9.0).active
        assert LinkChaos(drop=0.1).active
        assert LinkChaos(duplicate=0.1).active


class TestPassThrough:
    def test_quiet_links_deliver_untouched(self):
        fabric, inbox, _registry = make_fabric()
        send_n(fabric, 5)
        received = drain(inbox)
        assert [m.payload["seq"] for m in received] == [0, 1, 2, 3, 4]
        assert fabric.injected == {}

    def test_unknown_target_still_raises(self):
        fabric, _inbox, _registry = make_fabric()
        with pytest.raises(ChannelClosed):
            fabric.send("A", "nobody",
                        data_message("detect", b"x", 0, 0.0))


class TestDrop:
    def test_drops_are_counted_not_raised(self):
        fabric, inbox, registry = make_fabric(
            seed=3, default=LinkChaos(drop=0.5))
        send_n(fabric, 100)
        received = drain(inbox)
        dropped = fabric.injected.get(("chaos_drop", "A>B"), 0)
        assert dropped > 0
        assert len(received) + dropped == 100
        assert registry.value(metrics_mod.DROPPED_TOTAL,
                              reason="chaos_drop", link="A>B") == dropped

    def test_certain_drop_loses_everything(self):
        fabric, inbox, _registry = make_fabric(default=LinkChaos(drop=1.0))
        send_n(fabric, 10)
        assert drain(inbox) == []
        assert fabric.injected[("chaos_drop", "A>B")] == 10


class TestDuplicate:
    def test_duplicates_arrive_twice(self):
        fabric, inbox, _registry = make_fabric(
            default=LinkChaos(duplicate=1.0))
        send_n(fabric, 4)
        received = drain(inbox)
        assert len(received) == 8
        assert fabric.injected[("chaos_duplicate", "A>B")] == 4


class TestCorrupt:
    def test_corrupt_delivers_mangled_or_counts_loss(self):
        fabric, inbox, _registry = make_fabric(
            seed=7, default=LinkChaos(corrupt=1.0))
        send_n(fabric, 50)
        received = drain(inbox)
        lost = fabric.injected.get(("chaos_corrupt_lost", "A>B"), 0) \
            + fabric.injected.get(("chaos_corrupt", "A>B"), 0)
        # Every send was touched: either the mangled frame decoded (and
        # was delivered) or the codec rejected it (counted loss).
        assert len(received) <= 50
        assert lost >= 50 - len(received)
        for message in received:
            assert message.kind  # decodable messages only

    def test_rejected_corruption_counts_as_drop_metric(self):
        fabric, inbox, registry = make_fabric(
            seed=11, default=LinkChaos(corrupt=1.0))
        send_n(fabric, 50)
        delivered = len(drain(inbox))
        lost = registry.value(metrics_mod.DROPPED_TOTAL,
                              reason="chaos_corrupt", link="A>B")
        assert delivered + lost == 50


class TestDelay:
    def test_delayed_frames_arrive_after_the_hold(self):
        fabric, inbox, _registry = make_fabric(
            default=LinkChaos(delay=1.0, delay_seconds=0.05))
        send_n(fabric, 3)
        assert len(inbox) == 0  # held, not delivered inline
        deadline = time.monotonic() + 2.0
        while len(inbox) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(drain(inbox)) == 3
        assert fabric.injected[("chaos_delay", "A>B")] == 3


class TestPartition:
    def test_partition_raises_and_counts(self):
        fabric, inbox, registry = make_fabric()
        fabric.partition("A", "B")
        with pytest.raises(ChannelClosed):
            fabric.send("A", "B", data_message("detect", b"x", 0, 0.0))
        with pytest.raises(ChannelClosed):  # symmetric by default
            fabric.send("B", "A", data_message("detect", b"x", 0, 0.0))
        assert registry.value(metrics_mod.DROPPED_TOTAL,
                              reason="chaos_partition", link="A>B") == 1
        assert fabric.partitioned_links() == [("A", "B"), ("B", "A")]

    def test_heal_restores_delivery(self):
        fabric, inbox, _registry = make_fabric()
        fabric.partition("A", "B")
        fabric.heal("A", "B")
        send_n(fabric, 2)
        assert len(drain(inbox)) == 2
        assert fabric.partitioned_links() == []

    def test_asymmetric_partition(self):
        fabric, inbox, _registry = make_fabric()
        fabric.partition("A", "B", symmetric=False)
        fabric.send("B", "A", data_message("detect", b"x", 0, 0.0))
        with pytest.raises(ChannelClosed):
            fabric.send("A", "B", data_message("detect", b"x", 0, 0.0))


class TestDeterminism:
    def story(self, seed):
        fabric, inbox, _registry = make_fabric(
            seed=seed, default=LinkChaos(drop=0.3, duplicate=0.2,
                                         corrupt=0.1))
        send_n(fabric, 200)
        received = [m.payload.get("seq") for m in drain(inbox)
                    if m.kind == DATA]
        return received, dict(fabric.injected)

    def test_same_seed_same_fault_story(self):
        assert self.story(42) == self.story(42)

    def test_different_seed_different_story(self):
        assert self.story(42) != self.story(43)

    def test_per_link_isolation(self):
        # Traffic on an unrelated link must not perturb A>B's story.
        solo, _ = self.story(42)
        fabric, inbox, _registry = make_fabric(
            seed=42, default=LinkChaos(drop=0.3, duplicate=0.2,
                                       corrupt=0.1))
        noisy = fabric.register("C")
        for seq in range(200):
            fabric.send("A", "C", data_message("other", b"n", seq, 0.0))
            fabric.send("A", "B", data_message("detect", b"payload",
                                               seq, 0.0))
        interleaved = [m.payload.get("seq") for m in drain(inbox)
                       if m.kind == DATA]
        assert interleaved == solo


class TestPerLinkOverride:
    def test_set_link_beats_default(self):
        fabric, inbox, _registry = make_fabric(default=LinkChaos(drop=1.0))
        fabric.set_link("A", "B", LinkChaos())  # this link is clean
        send_n(fabric, 5)
        assert len(drain(inbox)) == 5
        assert fabric.injected == {}
