"""Tests for the deterministic link-fault injector (ChaosFabric)."""

import time

import pytest

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.core.tuples import DataTuple
from repro.runtime.app_runner import SwingRuntime
from repro.runtime.chaos import ChaosFabric, LinkChaos
from repro.runtime.channels import ChannelClosed
from repro.runtime.fabric import InProcFabric
from repro.runtime.messages import DATA, batch_message, data_message
from repro.runtime.serialization import (BATCH_MAGIC, decode_batch,
                                         encode_batch, encode_tuple)


def make_fabric(seed=0, default=None):
    registry = metrics_mod.MetricsRegistry()
    fabric = ChaosFabric(InProcFabric(), seed=seed, default=default,
                         registry=registry)
    inbox = fabric.register("B")
    fabric.register("A")
    return fabric, inbox, registry


def send_n(fabric, count, sender="A", target="B"):
    for seq in range(count):
        fabric.send(sender, target,
                    data_message("detect", b"payload", seq, 0.0))


def drain(inbox):
    messages = []
    while len(inbox):
        messages.append(inbox.get(timeout=0.1)[1])
    return messages


class TestLinkChaos:
    @pytest.mark.parametrize("kwargs", [
        {"drop": -0.1}, {"drop": 1.5}, {"duplicate": 2.0},
        {"corrupt": -1.0}, {"delay": 1.01}, {"delay_seconds": -0.1},
    ])
    def test_bad_probabilities_rejected(self, kwargs):
        with pytest.raises(RuntimeStateError):
            LinkChaos(**kwargs)

    def test_active_flag(self):
        assert not LinkChaos().active
        assert not LinkChaos(delay_seconds=9.0).active
        assert LinkChaos(drop=0.1).active
        assert LinkChaos(duplicate=0.1).active


class TestPassThrough:
    def test_quiet_links_deliver_untouched(self):
        fabric, inbox, _registry = make_fabric()
        send_n(fabric, 5)
        received = drain(inbox)
        assert [m.payload["seq"] for m in received] == [0, 1, 2, 3, 4]
        assert fabric.injected == {}

    def test_unknown_target_still_raises(self):
        fabric, _inbox, _registry = make_fabric()
        with pytest.raises(ChannelClosed):
            fabric.send("A", "nobody",
                        data_message("detect", b"x", 0, 0.0))


class TestDrop:
    def test_drops_are_counted_not_raised(self):
        fabric, inbox, registry = make_fabric(
            seed=3, default=LinkChaos(drop=0.5))
        send_n(fabric, 100)
        received = drain(inbox)
        dropped = fabric.injected.get(("chaos_drop", "A>B"), 0)
        assert dropped > 0
        assert len(received) + dropped == 100
        assert registry.value(metrics_mod.DROPPED_TOTAL,
                              reason="chaos_drop", link="A>B") == dropped

    def test_certain_drop_loses_everything(self):
        fabric, inbox, _registry = make_fabric(default=LinkChaos(drop=1.0))
        send_n(fabric, 10)
        assert drain(inbox) == []
        assert fabric.injected[("chaos_drop", "A>B")] == 10


class TestDuplicate:
    def test_duplicates_arrive_twice(self):
        fabric, inbox, _registry = make_fabric(
            default=LinkChaos(duplicate=1.0))
        send_n(fabric, 4)
        received = drain(inbox)
        assert len(received) == 8
        assert fabric.injected[("chaos_duplicate", "A>B")] == 4


class TestCorrupt:
    def test_corrupt_delivers_mangled_or_counts_loss(self):
        fabric, inbox, _registry = make_fabric(
            seed=7, default=LinkChaos(corrupt=1.0))
        send_n(fabric, 50)
        received = drain(inbox)
        lost = fabric.injected.get(("chaos_corrupt_lost", "A>B"), 0) \
            + fabric.injected.get(("chaos_corrupt", "A>B"), 0)
        # Every send was touched: either the mangled frame decoded (and
        # was delivered) or the codec rejected it (counted loss).
        assert len(received) <= 50
        assert lost >= 50 - len(received)
        for message in received:
            assert message.kind  # decodable messages only

    def test_rejected_corruption_counts_as_drop_metric(self):
        fabric, inbox, registry = make_fabric(
            seed=11, default=LinkChaos(corrupt=1.0))
        send_n(fabric, 50)
        delivered = len(drain(inbox))
        lost = registry.value(metrics_mod.DROPPED_TOTAL,
                              reason="chaos_corrupt", link="A>B")
        assert delivered + lost == 50


class TestCorruptBatch:
    """Corruption of batched (0x80-magic) frames must never hand a
    partially-decodable batch downstream: the inner frame is validated
    at the fabric and a mangled batch is dropped under chaos_corrupt."""

    @staticmethod
    def _batch_message(count=8):
        payloads = [encode_tuple(DataTuple(values={"x": seq}, seq=seq,
                                           created_at=0.0))
                    for seq in range(count)]
        frame = encode_batch(payloads)
        assert frame[0] == BATCH_MAGIC
        return batch_message("detect", frame, list(range(count)), 0.0)

    def test_surviving_batches_always_decode_fully(self):
        fabric, inbox, registry = make_fabric(
            seed=5, default=LinkChaos(corrupt=1.0))
        for _ in range(100):
            fabric.send("A", "B", self._batch_message())
        received = drain(inbox)
        lost = registry.value(metrics_mod.DROPPED_TOTAL,
                              reason="chaos_corrupt", link="A>B")
        assert len(received) + lost == 100
        assert lost > 0  # 1-bit flips do land inside the nested frame
        for message in received:
            # Whatever made it through must decode as one whole batch —
            # never raise, never truncate.
            batch = decode_batch(message.payload["batch"],
                                 zero_copy=False)
            assert len(batch) == 8

    def test_corrupt_batch_loss_is_loud_per_reason(self):
        fabric, _inbox, registry = make_fabric(
            seed=9, default=LinkChaos(corrupt=1.0))
        for _ in range(100):
            fabric.send("A", "B", self._batch_message())
        counted = registry.value(metrics_mod.DROPPED_TOTAL,
                                 reason="chaos_corrupt", link="A>B")
        injected = fabric.injected.get(("chaos_corrupt", "A>B"), 0)
        # Injection bookkeeping covers both outcomes (delivered-mangled
        # and dropped); the dropped share is exactly the counter.
        assert injected >= counted > 0

    def test_worker_counts_poison_batch_that_slips_through(self):
        # Belt and suspenders: if a corrupted batch ever reaches a
        # worker (e.g. corruption introduced beyond the fabric), the
        # decode failure is a counted drop, not a silent return.
        registry = metrics_mod.MetricsRegistry()
        graph = (GraphBuilder("poison-app")
                 .source("src", lambda: IterableSource([]))
                 .unit("detect", lambda: LambdaUnit(lambda value: value))
                 .sink("snk", CollectingSink)
                 .chain("src", "detect", "snk")
                 .build())
        runtime = SwingRuntime(graph, worker_ids=["B"], source_rate=1.0,
                               registry=registry)
        runtime.start()
        try:
            poison = self._batch_message()
            poison.payload["batch"] = poison.payload["batch"][:-3]
            runtime.fabric.send("A", "B", poison)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if registry.value(metrics_mod.DROPPED_TOTAL,
                                  reason="corrupt_batch",
                                  link="?>B"):
                    break
                time.sleep(0.02)
            assert registry.value(metrics_mod.DROPPED_TOTAL,
                                  reason="corrupt_batch",
                                  link="?>B") == 1
        finally:
            runtime.stop()


class TestDelay:
    def test_delayed_frames_arrive_after_the_hold(self):
        fabric, inbox, _registry = make_fabric(
            default=LinkChaos(delay=1.0, delay_seconds=0.05))
        send_n(fabric, 3)
        assert len(inbox) == 0  # held, not delivered inline
        deadline = time.monotonic() + 2.0
        while len(inbox) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(drain(inbox)) == 3
        assert fabric.injected[("chaos_delay", "A>B")] == 3


class TestPartition:
    def test_partition_raises_and_counts(self):
        fabric, inbox, registry = make_fabric()
        fabric.partition("A", "B")
        with pytest.raises(ChannelClosed):
            fabric.send("A", "B", data_message("detect", b"x", 0, 0.0))
        with pytest.raises(ChannelClosed):  # symmetric by default
            fabric.send("B", "A", data_message("detect", b"x", 0, 0.0))
        assert registry.value(metrics_mod.DROPPED_TOTAL,
                              reason="chaos_partition", link="A>B") == 1
        assert fabric.partitioned_links() == [("A", "B"), ("B", "A")]

    def test_heal_restores_delivery(self):
        fabric, inbox, _registry = make_fabric()
        fabric.partition("A", "B")
        fabric.heal("A", "B")
        send_n(fabric, 2)
        assert len(drain(inbox)) == 2
        assert fabric.partitioned_links() == []

    def test_asymmetric_partition(self):
        fabric, inbox, _registry = make_fabric()
        fabric.partition("A", "B", symmetric=False)
        fabric.send("B", "A", data_message("detect", b"x", 0, 0.0))
        with pytest.raises(ChannelClosed):
            fabric.send("A", "B", data_message("detect", b"x", 0, 0.0))


class TestDeterminism:
    def story(self, seed):
        fabric, inbox, _registry = make_fabric(
            seed=seed, default=LinkChaos(drop=0.3, duplicate=0.2,
                                         corrupt=0.1))
        send_n(fabric, 200)
        received = [m.payload.get("seq") for m in drain(inbox)
                    if m.kind == DATA]
        return received, dict(fabric.injected)

    def test_same_seed_same_fault_story(self):
        assert self.story(42) == self.story(42)

    def test_different_seed_different_story(self):
        assert self.story(42) != self.story(43)

    def test_per_link_isolation(self):
        # Traffic on an unrelated link must not perturb A>B's story.
        solo, _ = self.story(42)
        fabric, inbox, _registry = make_fabric(
            seed=42, default=LinkChaos(drop=0.3, duplicate=0.2,
                                       corrupt=0.1))
        noisy = fabric.register("C")
        for seq in range(200):
            fabric.send("A", "C", data_message("other", b"n", seq, 0.0))
            fabric.send("A", "B", data_message("detect", b"payload",
                                               seq, 0.0))
        interleaved = [m.payload.get("seq") for m in drain(inbox)
                       if m.kind == DATA]
        assert interleaved == solo


class TestPerLinkOverride:
    def test_set_link_beats_default(self):
        fabric, inbox, _registry = make_fabric(default=LinkChaos(drop=1.0))
        fabric.set_link("A", "B", LinkChaos())  # this link is clean
        send_n(fabric, 5)
        assert len(drain(inbox)) == 5
        assert fabric.injected == {}
