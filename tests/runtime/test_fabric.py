"""Tests for message fabrics."""

import time

import pytest

from repro.core.exceptions import RuntimeStateError
from repro.runtime import messages
from repro.runtime.channels import ChannelClosed
from repro.runtime.fabric import InProcFabric, TcpFabric


class TestInProcFabric:
    def test_send_and_receive(self):
        fabric = InProcFabric()
        fabric.register("A")
        mailbox_b = fabric.register("B")
        fabric.send("A", "B", messages.start_message())
        sender, message = mailbox_b.get(timeout=1.0)
        assert sender == "A"
        assert message.kind == messages.START

    def test_double_register_rejected(self):
        fabric = InProcFabric()
        fabric.register("A")
        with pytest.raises(RuntimeStateError):
            fabric.register("A")

    def test_send_to_unknown_raises(self):
        fabric = InProcFabric()
        fabric.register("A")
        with pytest.raises(ChannelClosed):
            fabric.send("A", "ghost", messages.start_message())

    def test_unregister(self):
        fabric = InProcFabric()
        fabric.register("A")
        fabric.register("B")
        fabric.unregister("B")
        with pytest.raises(ChannelClosed):
            fabric.send("A", "B", messages.start_message())

    def test_endpoint_ids(self):
        fabric = InProcFabric()
        fabric.register("B")
        fabric.register("A")
        assert fabric.endpoint_ids() == ["A", "B"]

    def test_mailbox_timeout(self):
        fabric = InProcFabric()
        mailbox = fabric.register("A")
        with pytest.raises(TimeoutError):
            mailbox.get(timeout=0.01)


class TestTcpFabric:
    def test_mesh_roundtrip(self):
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            beta.learn("alpha", alpha.address)
            mailbox_beta = beta.register("beta")
            alpha.send("alpha", "beta", messages.start_message())
            sender, message = mailbox_beta.get(timeout=3.0)
            assert sender == "alpha"
            assert message.kind == messages.START
        finally:
            alpha.close()
            beta.close()

    def test_bidirectional_after_learning(self):
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            beta.learn("alpha", alpha.address)
            mailbox_alpha = alpha.register("alpha")
            beta.send("beta", "alpha",
                      messages.join_message("beta"))
            sender, message = mailbox_alpha.get(timeout=3.0)
            assert sender == "beta"
            assert message.payload["worker_id"] == "beta"
        finally:
            alpha.close()
            beta.close()

    def test_unknown_target_raises(self):
        alpha = TcpFabric("alpha")
        try:
            from repro.core.exceptions import DiscoveryError
            with pytest.raises(DiscoveryError):
                alpha.send("alpha", "nowhere", messages.start_message())
        finally:
            alpha.close()

    def test_single_endpoint_per_fabric(self):
        alpha = TcpFabric("alpha")
        try:
            with pytest.raises(RuntimeStateError):
                alpha.register("other")
        finally:
            alpha.close()

    def test_reader_threads_pruned_after_disconnect(self):
        # Regression: one thread record per connection ever accepted used
        # to accumulate forever on a long-lived fabric.
        from repro.runtime.channels import TcpChannel
        from repro.runtime.serialization import encode_value

        def wait_until(predicate, timeout=3.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if predicate():
                    return True
                time.sleep(0.01)
            return False

        fabric = TcpFabric("hub")
        try:
            for round_no in range(5):
                channel = TcpChannel.connect(*fabric.address)
                channel.send(encode_value({"hello": "peer%d" % round_no}))
                assert wait_until(lambda: fabric.reader_count() >= 1)
                channel.close()
                assert wait_until(lambda: fabric.reader_count() == 0)
            assert len(fabric._readers) <= 1
        finally:
            fabric.close()

    def test_close_joins_accept_thread(self):
        fabric = TcpFabric("solo")
        fabric.close()
        assert not fabric._accept_thread.is_alive()
        assert fabric.reader_count() == 0

    def test_close_joins_reader_threads(self):
        from repro.runtime.channels import TcpChannel
        from repro.runtime.serialization import encode_value
        fabric = TcpFabric("hub")
        channel = TcpChannel.connect(*fabric.address)
        channel.send(encode_value({"hello": "peer"}))
        deadline = time.monotonic() + 3.0
        while fabric.reader_count() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        readers = list(fabric._readers)
        fabric.close()
        assert all(not thread.is_alive() for thread in readers)

    def test_stale_cached_channel_redialed(self):
        # A peer restarting invalidates the cached outgoing channel; the
        # next send must re-dial instead of failing.
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            mailbox = beta.register("beta")
            alpha.send("alpha", "beta", messages.start_message())
            mailbox.get(timeout=3.0)
            # Sever the cached channel behind alpha's back.
            alpha._outgoing["beta"].close()
            alpha.send("alpha", "beta", messages.stop_message())
            _sender, message = mailbox.get(timeout=3.0)
            assert message.kind == messages.STOP
        finally:
            alpha.close()
            beta.close()

    def test_many_messages_in_order(self):
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            mailbox = beta.register("beta")
            for seq in range(20):
                alpha.send("alpha", "beta",
                           messages.data_message("u", b"x", seq, 0.0))
            seqs = [mailbox.get(timeout=3.0)[1].payload["seq"]
                    for _ in range(20)]
            assert seqs == list(range(20))
        finally:
            alpha.close()
            beta.close()
