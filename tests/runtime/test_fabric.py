"""Tests for message fabrics."""

import threading
import time

import pytest

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError
from repro.core.overload import BLOCK, DROP_NEWEST, DROP_OLDEST, OverloadConfig
from repro.runtime import messages
from repro.runtime.channels import ChannelClosed
from repro.runtime.fabric import InProcFabric, Mailbox, TcpFabric


def data(seq):
    return messages.data_message("u", b"x", seq, 0.0)


def bounded_mailbox(capacity=2, policy=DROP_OLDEST):
    registry = metrics_mod.MetricsRegistry()
    overload = OverloadConfig(queue_capacity=capacity, drop_policy=policy)
    return Mailbox("W", overload=overload, registry=registry), registry


class TestBoundedMailbox:
    def test_unbounded_by_default(self):
        mailbox = Mailbox("W", registry=metrics_mod.MetricsRegistry())
        for seq in range(100):
            assert mailbox.put("A", data(seq))
        assert len(mailbox) == 100
        assert mailbox.shed_count == 0

    def test_drop_oldest_evicts_head(self):
        mailbox, registry = bounded_mailbox(capacity=2, policy=DROP_OLDEST)
        for seq in range(5):
            assert mailbox.put("A", data(seq)) or seq >= 2
        assert len(mailbox) == 2
        survivors = [mailbox.get(timeout=0.1)[1].payload["seq"]
                     for _ in range(2)]
        assert survivors == [3, 4]
        assert mailbox.shed_count == 3
        assert registry.value(metrics_mod.SHED_TOTAL, reason="queue_full",
                              queue="mailbox:W") == 3

    def test_drop_newest_rejects_arrival(self):
        mailbox, _registry = bounded_mailbox(capacity=2, policy=DROP_NEWEST)
        assert mailbox.put("A", data(0))
        assert mailbox.put("A", data(1))
        assert not mailbox.put("A", data(2))
        survivors = [mailbox.get(timeout=0.1)[1].payload["seq"]
                     for _ in range(2)]
        assert survivors == [0, 1]
        assert mailbox.shed_count == 1

    def test_control_messages_never_shed(self):
        mailbox, _registry = bounded_mailbox(capacity=1, policy=DROP_NEWEST)
        assert mailbox.put("A", data(0))
        # Control traffic is admitted over capacity, unconditionally.
        assert mailbox.put("A", messages.start_message())
        assert mailbox.put("A", messages.stop_message())
        assert len(mailbox) == 3
        assert mailbox.shed_count == 0

    def test_drop_oldest_spares_control_messages(self):
        mailbox, _registry = bounded_mailbox(capacity=2, policy=DROP_OLDEST)
        assert mailbox.put("A", messages.start_message())
        assert mailbox.put("A", data(0))
        assert mailbox.put("A", data(1))  # evicts DATA 0, not START
        kinds = [mailbox.get(timeout=0.1)[1].kind for _ in range(2)]
        assert kinds == [messages.START, messages.DATA]

    def test_block_policy_times_out_and_sheds(self):
        mailbox, registry = bounded_mailbox(capacity=1, policy=BLOCK)
        assert mailbox.put("A", data(0))
        started = time.monotonic()
        assert not mailbox.put("A", data(1), timeout=0.05)
        assert time.monotonic() - started >= 0.05
        assert registry.value(metrics_mod.SHED_TOTAL, reason="queue_full",
                              queue="mailbox:W") == 1

    def test_block_policy_unblocked_by_consumer(self):
        mailbox, _registry = bounded_mailbox(capacity=1, policy=BLOCK)
        assert mailbox.put("A", data(0))
        outcome = {}

        def producer():
            outcome["admitted"] = mailbox.put("A", data(1), timeout=2.0)

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert mailbox.get(timeout=1.0)[1].payload["seq"] == 0
        thread.join(timeout=2.0)
        assert outcome["admitted"]
        assert mailbox.get(timeout=1.0)[1].payload["seq"] == 1

    def test_depth_gauge_and_high_water_mark(self):
        mailbox, registry = bounded_mailbox(capacity=4)
        for seq in range(3):
            mailbox.put("A", data(seq))
        assert registry.gauge_value(metrics_mod.QUEUE_DEPTH,
                                    queue="mailbox:W") == 3
        mailbox.get(timeout=0.1)
        assert registry.gauge_value(metrics_mod.QUEUE_DEPTH,
                                    queue="mailbox:W") == 2
        assert mailbox.max_depth == 3

    def test_fabric_passes_overload_to_mailboxes(self):
        registry = metrics_mod.MetricsRegistry()
        overload = OverloadConfig(queue_capacity=2, drop_policy=DROP_NEWEST)
        fabric = InProcFabric(overload=overload, registry=registry)
        fabric.register("A")
        fabric.register("B")
        for seq in range(5):
            fabric.send("A", "B", data(seq))
        assert registry.value(metrics_mod.SHED_TOTAL, reason="queue_full",
                              queue="mailbox:B") == 3


class TestInProcFabric:
    def test_send_and_receive(self):
        fabric = InProcFabric()
        fabric.register("A")
        mailbox_b = fabric.register("B")
        fabric.send("A", "B", messages.start_message())
        sender, message = mailbox_b.get(timeout=1.0)
        assert sender == "A"
        assert message.kind == messages.START

    def test_double_register_rejected(self):
        fabric = InProcFabric()
        fabric.register("A")
        with pytest.raises(RuntimeStateError):
            fabric.register("A")

    def test_send_to_unknown_raises(self):
        fabric = InProcFabric()
        fabric.register("A")
        with pytest.raises(ChannelClosed):
            fabric.send("A", "ghost", messages.start_message())

    def test_unregister(self):
        fabric = InProcFabric()
        fabric.register("A")
        fabric.register("B")
        fabric.unregister("B")
        with pytest.raises(ChannelClosed):
            fabric.send("A", "B", messages.start_message())

    def test_endpoint_ids(self):
        fabric = InProcFabric()
        fabric.register("B")
        fabric.register("A")
        assert fabric.endpoint_ids() == ["A", "B"]

    def test_mailbox_timeout(self):
        fabric = InProcFabric()
        mailbox = fabric.register("A")
        with pytest.raises(TimeoutError):
            mailbox.get(timeout=0.01)


class TestTcpFabric:
    def test_mesh_roundtrip(self):
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            beta.learn("alpha", alpha.address)
            mailbox_beta = beta.register("beta")
            alpha.send("alpha", "beta", messages.start_message())
            sender, message = mailbox_beta.get(timeout=3.0)
            assert sender == "alpha"
            assert message.kind == messages.START
        finally:
            alpha.close()
            beta.close()

    def test_bidirectional_after_learning(self):
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            beta.learn("alpha", alpha.address)
            mailbox_alpha = alpha.register("alpha")
            beta.send("beta", "alpha",
                      messages.join_message("beta"))
            sender, message = mailbox_alpha.get(timeout=3.0)
            assert sender == "beta"
            assert message.payload["worker_id"] == "beta"
        finally:
            alpha.close()
            beta.close()

    def test_unknown_target_raises(self):
        alpha = TcpFabric("alpha")
        try:
            from repro.core.exceptions import DiscoveryError
            with pytest.raises(DiscoveryError):
                alpha.send("alpha", "nowhere", messages.start_message())
        finally:
            alpha.close()

    def test_single_endpoint_per_fabric(self):
        alpha = TcpFabric("alpha")
        try:
            with pytest.raises(RuntimeStateError):
                alpha.register("other")
        finally:
            alpha.close()

    def test_reader_threads_pruned_after_disconnect(self):
        # Regression: one thread record per connection ever accepted used
        # to accumulate forever on a long-lived fabric.
        from repro.runtime.channels import TcpChannel
        from repro.runtime.serialization import encode_value

        def wait_until(predicate, timeout=3.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if predicate():
                    return True
                time.sleep(0.01)
            return False

        fabric = TcpFabric("hub")
        try:
            for round_no in range(5):
                channel = TcpChannel.connect(*fabric.address)
                channel.send(encode_value({"hello": "peer%d" % round_no}))
                assert wait_until(lambda: fabric.reader_count() >= 1)
                channel.close()
                assert wait_until(lambda: fabric.reader_count() == 0)
            assert len(fabric._readers) <= 1
        finally:
            fabric.close()

    def test_close_joins_accept_thread(self):
        fabric = TcpFabric("solo")
        fabric.close()
        assert not fabric._accept_thread.is_alive()
        assert fabric.reader_count() == 0

    def test_close_joins_reader_threads(self):
        from repro.runtime.channels import TcpChannel
        from repro.runtime.serialization import encode_value
        fabric = TcpFabric("hub")
        channel = TcpChannel.connect(*fabric.address)
        channel.send(encode_value({"hello": "peer"}))
        deadline = time.monotonic() + 3.0
        while fabric.reader_count() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        readers = list(fabric._readers)
        fabric.close()
        assert all(not thread.is_alive() for thread in readers)

    def test_stale_cached_channel_redialed(self):
        # A peer restarting invalidates the cached outgoing channel; the
        # next send must re-dial instead of failing.
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            mailbox = beta.register("beta")
            alpha.send("alpha", "beta", messages.start_message())
            mailbox.get(timeout=3.0)
            # Sever the cached channel behind alpha's back.
            alpha._outgoing["beta"].close()
            alpha.send("alpha", "beta", messages.stop_message())
            _sender, message = mailbox.get(timeout=3.0)
            assert message.kind == messages.STOP
        finally:
            alpha.close()
            beta.close()

    def test_many_messages_in_order(self):
        alpha = TcpFabric("alpha")
        beta = TcpFabric("beta")
        try:
            alpha.learn("beta", beta.address)
            mailbox = beta.register("beta")
            for seq in range(20):
                alpha.send("alpha", "beta",
                           messages.data_message("u", b"x", seq, 0.0))
            seqs = [mailbox.get(timeout=3.0)[1].payload["seq"]
                    for _ in range(20)]
            assert seqs == list(range(20))
        finally:
            alpha.close()
            beta.close()
