"""Fuzzing the codec and message layer: hostile bytes must fail cleanly.

A malicious or corrupted peer can write anything into a socket; the only
acceptable outcomes are a decoded value or :class:`SerializationError` —
never a crash, hang, or huge allocation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import SerializationError, SwingError
from repro.runtime.messages import Message
from repro.runtime.serialization import decode_tuple, decode_value


class TestDecodeFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_decode_value_never_crashes(self, data):
        try:
            decode_value(data)
        except SerializationError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=200))
    def test_decode_tuple_never_crashes(self, data):
        try:
            decode_tuple(data)
        except SerializationError:
            pass

    @given(st.binary(max_size=200))
    def test_message_decode_never_crashes(self, data):
        try:
            Message.decode(data)
        except SerializationError:
            pass

    def test_huge_declared_string_rejected_without_allocation(self):
        # Tag 's' + 4-byte length claiming 4 GiB, then nothing.
        hostile = b"s" + (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(SerializationError):
            decode_value(hostile)

    def test_huge_declared_list_rejected(self):
        hostile = b"l" + (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(SerializationError):
            decode_value(hostile)

    def test_nested_bombs_bounded(self):
        # Deeply nested lists each claiming one element then truncating.
        hostile = b"l\x00\x00\x00\x01" * 50
        with pytest.raises(SerializationError):
            decode_value(hostile)


class TestDecodeFrameFuzz:
    @given(st.binary(max_size=64))
    def test_face_frame_decoder_rejects_wrong_sizes(self, data):
        from repro.apps.face.images import FRAME_HEIGHT, FRAME_WIDTH, decode_frame
        if len(data) == FRAME_HEIGHT * FRAME_WIDTH:
            return  # valid size: accepted
        with pytest.raises(SwingError):
            decode_frame(data)

    @given(st.binary(max_size=64))
    def test_audio_decoder_only_rejects_odd_lengths(self, data):
        from repro.apps.translate.audio import decode_audio
        if len(data) % 2:
            with pytest.raises(SwingError):
                decode_audio(data)
        else:
            waveform = decode_audio(data)
            assert len(waveform) == len(data) // 2
