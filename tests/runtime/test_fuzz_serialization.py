"""Fuzzing the codec and message layer: hostile bytes must fail cleanly.

A malicious or corrupted peer can write anything into a socket; the only
acceptable outcomes are a decoded value or :class:`SerializationError` —
never a crash, hang, or huge allocation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.core.exceptions import SerializationError, SwingError
from repro.core.tuples import DataTuple
from repro.runtime.messages import Message
from repro.runtime.serialization import (decode_batch, decode_tuple,
                                         decode_value, encode_batch,
                                         encode_tuple, encode_value)


class TestDecodeFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_decode_value_never_crashes(self, data):
        try:
            decode_value(data)
        except SerializationError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=200))
    def test_decode_tuple_never_crashes(self, data):
        try:
            decode_tuple(data)
        except SerializationError:
            pass

    @given(st.binary(max_size=200))
    def test_message_decode_never_crashes(self, data):
        try:
            Message.decode(data)
        except SerializationError:
            pass

    def test_huge_declared_string_rejected_without_allocation(self):
        # Tag 's' + 4-byte length claiming 4 GiB, then nothing.
        hostile = b"s" + (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(SerializationError):
            decode_value(hostile)

    def test_huge_declared_list_rejected(self):
        hostile = b"l" + (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(SerializationError):
            decode_value(hostile)

    def test_nested_bombs_bounded(self):
        # Deeply nested lists each claiming one element then truncating.
        hostile = b"l\x00\x00\x00\x01" * 50
        with pytest.raises(SerializationError):
            decode_value(hostile)


#: seeded generator for every wire-expressible value shape, numpy
#: scalars and arrays included (the codec coerces numpy scalars to the
#: matching Python type on the way through)
_VALUES = st.recursive(
    st.one_of(
        st.none(), st.booleans(),
        st.integers(min_value=-2 ** 63, max_value=2 ** 63 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=20), st.binary(max_size=20),
        st.sampled_from([np.bool_(True), np.bool_(False),
                         np.int32(-7), np.int64(2 ** 40), np.float32(0.5)]),
        npst.arrays(dtype=st.sampled_from([np.uint8, np.int32, np.float64]),
                    shape=npst.array_shapes(max_dims=2, max_side=4))),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4)),
    max_leaves=10)


def _assert_same(decoded, original):
    """Structural equality modulo the codec's documented coercions."""
    if isinstance(decoded, memoryview):
        decoded = bytes(decoded)
    if isinstance(original, np.ndarray) or isinstance(decoded, np.ndarray):
        assert np.array_equal(np.asarray(decoded), np.asarray(original),
                              equal_nan=True)
    elif isinstance(original, dict):
        assert set(decoded) == set(original)
        for key in original:
            _assert_same(decoded[key], original[key])
    elif isinstance(original, (list, tuple)):
        assert len(decoded) == len(original)
        for got, want in zip(decoded, original):
            _assert_same(got, want)
    else:
        assert decoded == original


class TestRoundtripFuzz:
    """Seeded generative coverage: whatever encodes must decode back."""

    @given(_VALUES)
    @settings(max_examples=150, deadline=None)
    def test_value_roundtrip(self, value):
        _assert_same(decode_value(encode_value(value)), value)

    @given(st.lists(_VALUES, min_size=1, max_size=5),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=100, deadline=None)
    def test_batch_roundtrip(self, values, seq0):
        payloads = [encode_tuple(DataTuple(values={"v": value},
                                           seq=seq0 + offset))
                    for offset, value in enumerate(values)]
        out = decode_batch(encode_batch(payloads))
        assert [d.seq for d in out] == [seq0 + i for i in range(len(values))]
        for decoded, original in zip(out, values):
            _assert_same(decoded.values["v"], original)


class TestBatchFrameFuzz:
    """Hostile batch frames: clean failure is the only acceptable outcome."""

    @staticmethod
    def _frame():
        payloads = [encode_tuple(DataTuple(
            values={"blob": b"abcd", "i": i}, seq=i)) for i in range(3)]
        return encode_batch(payloads)

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_decode_batch_never_crashes(self, data):
        try:
            decode_batch(data)
        except SerializationError:
            pass  # the only acceptable failure mode

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncation_always_fails_cleanly(self, data):
        frame = self._frame()
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(SerializationError):
            decode_batch(frame[:cut])

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_bit_flips_never_crash(self, data):
        frame = bytearray(self._frame())
        index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[index] ^= 1 << bit
        try:
            decode_batch(bytes(frame))
        except SerializationError:
            pass  # flips may still decode (payload content) or must fail cleanly


class TestDecodeFrameFuzz:
    @given(st.binary(max_size=64))
    def test_face_frame_decoder_rejects_wrong_sizes(self, data):
        from repro.apps.face.images import FRAME_HEIGHT, FRAME_WIDTH, decode_frame
        if len(data) == FRAME_HEIGHT * FRAME_WIDTH:
            return  # valid size: accepted
        with pytest.raises(SwingError):
            decode_frame(data)

    @given(st.binary(max_size=64))
    def test_audio_decoder_only_rejects_odd_lengths(self, data):
        from repro.apps.translate.audio import decode_audio
        if len(data) % 2:
            with pytest.raises(SwingError):
                decode_audio(data)
        else:
            waveform = decode_audio(data)
            assert len(waveform) == len(data) // 2
