"""Tests for the binary tuple codec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as npst

from repro.core.exceptions import SerializationError
from repro.core.tuples import DataTuple
from repro.runtime.serialization import (decode_tuple, decode_value,
                                         encode_tuple, encode_value)
from repro.trace import SpanContext


def roundtrip(value):
    return decode_value(encode_value(value))


class TestScalars:
    @pytest.mark.parametrize("value", [None, True, False, 0, -5, 2**40,
                                       0.0, -1.5, 3.14159])
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_string_unicode(self):
        assert roundtrip("héllo wörld ✓") == "héllo wörld ✓"

    def test_bytes(self):
        assert roundtrip(b"\x00\x01\xff") == b"\x00\x01\xff"

    def test_bytearray_decodes_as_bytes(self):
        assert roundtrip(bytearray(b"abc")) == b"abc"

    def test_numpy_scalars_coerced(self):
        assert roundtrip(np.int32(7)) == 7
        assert roundtrip(np.float64(1.5)) == 1.5


class TestContainers:
    def test_list(self):
        assert roundtrip([1, "two", b"3", None]) == [1, "two", b"3", None]

    def test_tuple_preserved(self):
        assert roundtrip((1, 2)) == (1, 2)

    def test_nested(self):
        value = {"a": [1, {"b": (2.5, None)}], "c": b"x"}
        assert roundtrip(value) == value

    def test_empty_containers(self):
        assert roundtrip([]) == []
        assert roundtrip({}) == {}

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(SerializationError):
            encode_value({1: "a"})


class TestArrays:
    @pytest.mark.parametrize("dtype", ["uint8", "int32", "float32", "float64"])
    def test_dtype_roundtrip(self, dtype):
        array = np.arange(12, dtype=dtype).reshape(3, 4)
        result = roundtrip(array)
        assert result.dtype == array.dtype
        assert np.array_equal(result, array)

    def test_zero_dim_array(self):
        array = np.float64(3.5)
        result = roundtrip(np.asarray(array))
        assert result.shape == ()
        assert float(result) == 3.5

    def test_empty_array(self):
        array = np.zeros((0, 3), dtype=np.float32)
        result = roundtrip(array)
        assert result.shape == (0, 3)

    def test_non_contiguous_array(self):
        array = np.arange(16).reshape(4, 4)[::2, ::2]
        assert np.array_equal(roundtrip(array), array)

    @given(npst.arrays(dtype=st.sampled_from([np.uint8, np.float32]),
                       shape=npst.array_shapes(max_dims=3, max_side=8)))
    def test_arbitrary_arrays(self, array):
        result = roundtrip(array)
        assert result.shape == array.shape
        assert np.array_equal(result, array, equal_nan=True)


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_truncated_payload_rejected(self):
        data = encode_value("hello")
        with pytest.raises(SerializationError):
            decode_value(data[:-1])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(encode_value(1) + b"junk")

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(b"Z")

    def test_empty_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(b"")


class TestTupleCodec:
    def test_tuple_roundtrip(self):
        data = DataTuple(values={"frame": b"\x01\x02", "name": "x"},
                         seq=42, created_at=1.25)
        result = decode_tuple(encode_tuple(data))
        assert result.seq == 42
        assert result.created_at == 1.25
        assert result.values == data.values

    def test_tuple_with_array_payload(self):
        array = np.ones((8, 8), dtype=np.float32)
        data = DataTuple(values={"matrix": array}, seq=0)
        result = decode_tuple(encode_tuple(data))
        assert np.array_equal(result.get_value("matrix"), array)

    def test_non_tuple_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_tuple(encode_value([1, 2, 3]))

    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(min_value=-2**60, max_value=2**60),
                  st.text(max_size=30), st.binary(max_size=30),
                  st.booleans(), st.none(),
                  st.floats(allow_nan=False, allow_infinity=False)),
        max_size=6),
        st.integers(min_value=0, max_value=2**31))
    def test_arbitrary_tuples_roundtrip(self, values, seq):
        data = DataTuple(values=values, seq=seq, created_at=0.5)
        result = decode_tuple(encode_tuple(data))
        assert result.values == values
        assert result.seq == seq


class TestSpanContextCodec:
    def test_context_rides_the_wire(self):
        data = DataTuple(values={"x": 1}, seq=7,
                         trace=SpanContext(sampled=True, origin="camera"))
        result = decode_tuple(encode_tuple(data))
        assert result.trace is not None
        assert result.trace.sampled is True
        assert result.trace.origin == "camera"

    def test_unsampled_context_roundtrips(self):
        data = DataTuple(values={}, seq=1,
                         trace=SpanContext(sampled=False, origin=""))
        result = decode_tuple(encode_tuple(data))
        assert result.trace is not None
        assert result.trace.sampled is False

    def test_absent_context_decodes_as_none(self):
        data = DataTuple(values={"x": 1}, seq=3)
        result = decode_tuple(encode_tuple(data))
        assert result.trace is None

    def test_context_survives_derive(self):
        data = DataTuple(values={"x": 1}, seq=9,
                         trace=SpanContext(sampled=True, origin="src"))
        derived = data.derive(values={"y": 2})
        assert derived.trace is data.trace
