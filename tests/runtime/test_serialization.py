"""Tests for the binary tuple codec."""

import struct

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as npst

from repro.core.exceptions import SerializationError
from repro.core.tuples import DataTuple
from repro.runtime.serialization import (BATCH_MAGIC, MAX_BATCH_TUPLES,
                                         MAX_DEPTH, decode_batch,
                                         decode_tuple, decode_value,
                                         encode_batch, encode_tuple,
                                         encode_value)
from repro.trace import SpanContext


def roundtrip(value):
    return decode_value(encode_value(value))


class TestScalars:
    @pytest.mark.parametrize("value", [None, True, False, 0, -5, 2**40,
                                       0.0, -1.5, 3.14159])
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_string_unicode(self):
        assert roundtrip("héllo wörld ✓") == "héllo wörld ✓"

    def test_bytes(self):
        assert roundtrip(b"\x00\x01\xff") == b"\x00\x01\xff"

    def test_bytearray_decodes_as_bytes(self):
        assert roundtrip(bytearray(b"abc")) == b"abc"

    def test_numpy_scalars_coerced(self):
        assert roundtrip(np.int32(7)) == 7
        assert roundtrip(np.float64(1.5)) == 1.5

    def test_numpy_bool_coerced(self):
        # Regression: np.bool_ is neither a Python bool nor an
        # np.integer, so it used to fall through to the unsupported-type
        # error even though bool arrays encoded fine.
        assert roundtrip(np.bool_(True)) is True
        assert roundtrip(np.bool_(False)) is False

    def test_numpy_bool_from_comparison(self):
        # The shape the regression actually appeared in: a scalar
        # comparison result placed into a tuple's values.
        flag = np.float64(2.0) > 1.0
        assert isinstance(flag, np.bool_)
        assert roundtrip({"detected": flag}) == {"detected": True}


class TestContainers:
    def test_list(self):
        assert roundtrip([1, "two", b"3", None]) == [1, "two", b"3", None]

    def test_tuple_preserved(self):
        assert roundtrip((1, 2)) == (1, 2)

    def test_nested(self):
        value = {"a": [1, {"b": (2.5, None)}], "c": b"x"}
        assert roundtrip(value) == value

    def test_empty_containers(self):
        assert roundtrip([]) == []
        assert roundtrip({}) == {}

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(SerializationError):
            encode_value({1: "a"})


class TestArrays:
    @pytest.mark.parametrize("dtype", ["uint8", "int32", "float32", "float64"])
    def test_dtype_roundtrip(self, dtype):
        array = np.arange(12, dtype=dtype).reshape(3, 4)
        result = roundtrip(array)
        assert result.dtype == array.dtype
        assert np.array_equal(result, array)

    def test_zero_dim_array(self):
        array = np.float64(3.5)
        result = roundtrip(np.asarray(array))
        assert result.shape == ()
        assert float(result) == 3.5

    def test_empty_array(self):
        array = np.zeros((0, 3), dtype=np.float32)
        result = roundtrip(array)
        assert result.shape == (0, 3)

    def test_non_contiguous_array(self):
        array = np.arange(16).reshape(4, 4)[::2, ::2]
        assert np.array_equal(roundtrip(array), array)

    @given(npst.arrays(dtype=st.sampled_from([np.uint8, np.float32]),
                       shape=npst.array_shapes(max_dims=3, max_side=8)))
    def test_arbitrary_arrays(self, array):
        result = roundtrip(array)
        assert result.shape == array.shape
        assert np.array_equal(result, array, equal_nan=True)


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_truncated_payload_rejected(self):
        data = encode_value("hello")
        with pytest.raises(SerializationError):
            decode_value(data[:-1])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(encode_value(1) + b"junk")

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(b"Z")

    def test_empty_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(b"")

    def test_out_of_range_int_wrapped_as_serialization_error(self):
        # Regression: ints beyond the signed-64-bit wire range used to
        # leak struct.error out of encode_value.
        with pytest.raises(SerializationError):
            encode_value(2 ** 70)
        with pytest.raises(SerializationError):
            encode_value({"count": -(2 ** 70)})

    def test_encode_nesting_bomb_rejected(self):
        value = []
        for _ in range(MAX_DEPTH + 5):
            value = [value]
        with pytest.raises(SerializationError):
            encode_value(value)

    def test_decode_nesting_bomb_rejected(self):
        # A syntactically complete payload nested past the bound must be
        # refused by the depth limit, not by blowing the recursion limit.
        hostile = b"l\x00\x00\x00\x01" * (MAX_DEPTH + 5) + b"N"
        with pytest.raises(SerializationError):
            decode_value(hostile)

    def test_nesting_under_the_limit_roundtrips(self):
        value = 1
        for _ in range(MAX_DEPTH - 1):
            value = [value]
        assert roundtrip(value) == value


class TestScalarArrayPayloads:
    """Shape-() arrays must enforce the payload-size check like any rank."""

    @staticmethod
    def _scalar_frame(dtype=b"<f8", payload=b""):
        return (b"a" + bytes([len(dtype)]) + dtype + b"\x00"
                + len(payload).to_bytes(4, "big") + payload)

    def test_zero_length_scalar_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(self._scalar_frame(payload=b""))

    def test_oversized_scalar_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(self._scalar_frame(payload=b"\x00" * 16))

    def test_exact_scalar_payload_accepted(self):
        result = decode_value(
            self._scalar_frame(payload=struct.pack("<d", 2.5)))
        assert result.shape == ()
        assert float(result) == 2.5


class TestBatchCodec:
    @staticmethod
    def _payloads(count):
        return [encode_tuple(DataTuple(
            values={"i": i, "blob": bytes([i]) * 8,
                    "arr": np.arange(4, dtype=np.int32) + i},
            seq=i)) for i in range(count)]

    def test_roundtrip(self):
        out = decode_batch(encode_batch(self._payloads(5)))
        assert [d.seq for d in out] == list(range(5))
        assert bytes(out[3].values["blob"]) == bytes([3]) * 8
        assert np.array_equal(out[2].values["arr"],
                              np.arange(4, dtype=np.int32) + 2)

    def test_single_payload_is_byte_identical_legacy_format(self):
        payload = self._payloads(1)[0]
        assert encode_batch([payload]) == payload
        out = decode_batch(payload)
        assert len(out) == 1
        assert out[0].seq == 0

    def test_magic_is_not_a_value_tag(self):
        frame = encode_batch(self._payloads(2))
        assert frame[0] == BATCH_MAGIC
        with pytest.raises(SerializationError):
            decode_value(bytes([BATCH_MAGIC]))

    def test_zero_copy_decode_returns_views(self):
        frame = encode_batch(self._payloads(3))
        out = decode_batch(frame)
        blob = out[1].values["blob"]
        assert isinstance(blob, memoryview)
        assert bytes(blob) == bytes([1]) * 8
        arr = out[1].values["arr"]
        assert arr.flags.writeable is False
        assert np.shares_memory(arr, np.frombuffer(frame, dtype=np.uint8))

    def test_copy_mode_detaches_from_the_frame(self):
        frame = encode_batch(self._payloads(2))
        out = decode_batch(frame, zero_copy=False)
        assert isinstance(out[0].values["blob"], bytes)
        assert not np.shares_memory(out[0].values["arr"],
                                    np.frombuffer(frame, dtype=np.uint8))

    def test_empty_batch_rejected(self):
        with pytest.raises(SerializationError):
            encode_batch([])

    def test_zero_count_frame_rejected(self):
        with pytest.raises(SerializationError):
            decode_batch(bytes([BATCH_MAGIC]) + (0).to_bytes(4, "big"))

    def test_huge_declared_count_rejected(self):
        hostile = (bytes([BATCH_MAGIC])
                   + (MAX_BATCH_TUPLES + 1).to_bytes(4, "big"))
        with pytest.raises(SerializationError):
            decode_batch(hostile)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(SerializationError):
            decode_batch(encode_batch(self._payloads(2)) + b"x")

    def test_truncated_batch_rejected(self):
        frame = encode_batch(self._payloads(2))
        with pytest.raises(SerializationError):
            decode_batch(frame[:-3])


class TestTupleCodec:
    def test_tuple_roundtrip(self):
        data = DataTuple(values={"frame": b"\x01\x02", "name": "x"},
                         seq=42, created_at=1.25)
        result = decode_tuple(encode_tuple(data))
        assert result.seq == 42
        assert result.created_at == 1.25
        assert result.values == data.values

    def test_tuple_with_array_payload(self):
        array = np.ones((8, 8), dtype=np.float32)
        data = DataTuple(values={"matrix": array}, seq=0)
        result = decode_tuple(encode_tuple(data))
        assert np.array_equal(result.get_value("matrix"), array)

    def test_non_tuple_payload_rejected(self):
        with pytest.raises(SerializationError):
            decode_tuple(encode_value([1, 2, 3]))

    def test_fast_envelope_matches_generic_encoding(self):
        # The specialized envelope emitter must stay byte-identical to
        # encoding the equivalent field dict through the generic codec,
        # which defines the wire format.
        full = DataTuple(values={"x": 1, "blob": b"abc"}, seq=5,
                         created_at=2.5, deadline=9.0,
                         trace=SpanContext(sampled=True, origin="cam"),
                         delivery_attempt=3)
        minimal = DataTuple(values={}, seq=0, created_at=0.0)
        for data in (full, minimal):
            fields = {"seq": data.seq, "created_at": data.created_at,
                      "values": data.values}
            if data.deadline is not None:
                fields["deadline"] = data.deadline
            if data.trace is not None:
                fields["trace"] = data.trace.to_dict()
            if data.delivery_attempt != 1:
                fields["delivery_attempt"] = data.delivery_attempt
            assert encode_tuple(data) == encode_value(fields)

    def test_non_canonical_field_types_still_encode(self):
        # An int created_at must take the generic path and keep its
        # historical int wire tag.
        data = DataTuple(values={"x": 1}, seq=2, created_at=0)
        result = decode_tuple(encode_tuple(data))
        assert result.created_at == 0
        assert isinstance(result.created_at, int)

    def test_out_of_range_seq_wrapped(self):
        with pytest.raises(SerializationError):
            encode_tuple(DataTuple(values={}, seq=2 ** 70))

    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(min_value=-2**60, max_value=2**60),
                  st.text(max_size=30), st.binary(max_size=30),
                  st.booleans(), st.none(),
                  st.floats(allow_nan=False, allow_infinity=False)),
        max_size=6),
        st.integers(min_value=0, max_value=2**31))
    def test_arbitrary_tuples_roundtrip(self, values, seq):
        data = DataTuple(values=values, seq=seq, created_at=0.5)
        result = decode_tuple(encode_tuple(data))
        assert result.values == values
        assert result.seq == seq


class TestSpanContextCodec:
    def test_context_rides_the_wire(self):
        data = DataTuple(values={"x": 1}, seq=7,
                         trace=SpanContext(sampled=True, origin="camera"))
        result = decode_tuple(encode_tuple(data))
        assert result.trace is not None
        assert result.trace.sampled is True
        assert result.trace.origin == "camera"

    def test_unsampled_context_roundtrips(self):
        data = DataTuple(values={}, seq=1,
                         trace=SpanContext(sampled=False, origin=""))
        result = decode_tuple(encode_tuple(data))
        assert result.trace is not None
        assert result.trace.sampled is False

    def test_absent_context_decodes_as_none(self):
        data = DataTuple(values={"x": 1}, seq=3)
        result = decode_tuple(encode_tuple(data))
        assert result.trace is None

    def test_context_survives_derive(self):
        data = DataTuple(values={"x": 1}, seq=9,
                         trace=SpanContext(sampled=True, origin="src"))
        derived = data.derive(values={"y": 2})
        assert derived.trace is data.trace
