"""Worker-hosted keyed state and the live range-migration path."""

import time

import pytest

from repro import metrics as metrics_mod
from repro.core.delivery import AT_LEAST_ONCE, DeliveryConfig
from repro.core.exceptions import DeploymentError
from repro.core.keyed import KEY_SPACE, KeyedConfig, KeyRange, hash_key
from repro.apps.sensing import build_sensing_graph
from repro.runtime.app_runner import SwingRuntime
from repro.runtime.dispatcher import instance_id
from repro.runtime.migration import migrate_range

HALF = KEY_SPACE // 2


def _keyed_runtime(registry=None, reading_count=400, split_enabled=False):
    graph = build_sensing_graph(reading_count=reading_count, key_count=8,
                                alpha=1.2, window=0.2, seed=7)
    return SwingRuntime(
        graph, worker_ids=["B", "C"], master_id="A", policy="RR",
        source_rate=200.0, seed=3, registry=registry,
        delivery=DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=4096,
                                dedup_window=8192, max_delivery_attempts=6),
        keyed=KeyedConfig(key_count=8, zipf_alpha=1.2,
                          split_enabled=split_enabled))


class TestKeyedBootstrap:
    def test_deploy_builds_even_table_over_instances(self):
        runtime = _keyed_runtime(reading_count=4)
        runtime.start()
        try:
            disp = runtime.master.runtime.dispatcher("sensor", "aggregate")
            table = disp.controller.key_table
            assert table is not None
            assert table.snapshot() == (
                (0, HALF, instance_id("aggregate", "B")),
                (HALF, KEY_SPACE, instance_id("aggregate", "C")))
        finally:
            runtime.stop()

    def test_unkeyed_runtime_gets_no_table(self):
        graph = build_sensing_graph(reading_count=4)
        runtime = SwingRuntime(graph, worker_ids=["B", "C"], policy="RR",
                               source_rate=200.0, seed=3)
        runtime.start()
        try:
            disp = runtime.master.runtime.dispatcher("sensor", "aggregate")
            assert disp.controller.key_table is None
        finally:
            runtime.stop()


class TestWorkerKeyState:
    def test_export_import_moves_entries(self):
        runtime = _keyed_runtime()
        runtime.start()
        try:
            worker_b = runtime.workers["B"]
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                try:
                    if len(worker_b.state_store("aggregate")) > 0:
                        break
                except DeploymentError:
                    pass
                time.sleep(0.05)
            store_b = worker_b.state_store("aggregate")
            keys_before = set(store_b.keys())
            assert keys_before, "B accumulated no keyed state"
            frame = worker_b.export_key_state("aggregate", KeyRange(0, HALF))
            moved = runtime.workers["C"].import_key_state(frame)
            assert moved == len(keys_before)  # B owns exactly [0, HALF)
            assert not set(store_b.keys()) & keys_before  # left the source
            store_c = runtime.workers["C"].state_store("aggregate")
            assert keys_before <= set(store_c.keys())
        finally:
            runtime.stop()

    def test_import_for_unhosted_unit_rejected(self):
        runtime = _keyed_runtime(reading_count=4)
        runtime.start()
        try:
            worker_b = runtime.workers["B"]
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                try:
                    worker_b.state_store("aggregate")
                    break
                except DeploymentError:
                    time.sleep(0.05)
            frame = worker_b.export_key_state("aggregate",
                                              KeyRange(0, KEY_SPACE))
            # the master hosts sensor + collect, never the aggregate
            with pytest.raises(DeploymentError, match="not.*hosted"):
                runtime.master.runtime.import_key_state(frame)
        finally:
            runtime.stop()

    def test_key_range_checkpoint_round_trip(self):
        runtime = _keyed_runtime(reading_count=4)
        runtime.start()
        try:
            master_runtime = runtime.master.runtime
            exported = master_runtime.export_key_ranges()
            assert "sensor>aggregate" in exported
            entries = exported["sensor>aggregate"]
            # mutate, restore, and confirm the restore wins
            assert master_runtime.import_key_ranges("sensor>aggregate",
                                                    entries)
            table = master_runtime.dispatcher(
                "sensor", "aggregate").controller.key_table
            assert table.snapshot() == tuple(tuple(e) for e in entries)
            assert not master_runtime.import_key_ranges("no>edge", entries)
        finally:
            runtime.stop()


class TestMigrateRange:
    def test_mid_run_migration_keeps_stream_flowing(self):
        registry = metrics_mod.MetricsRegistry()
        runtime = _keyed_runtime(registry=registry)
        runtime.start()
        try:
            disp = runtime.master.runtime.dispatcher("sensor", "aggregate")
            table = disp.controller.key_table
            time.sleep(0.5)
            source_owner = instance_id("aggregate", "B")
            ranges = table.ranges_owned_by(source_owner)
            assert ranges
            moved = migrate_range(
                disp, ranges[0], runtime.workers["B"], runtime.workers["C"],
                instance_id("aggregate", "C"), "aggregate",
                reason="drain", registry=registry)
            assert moved >= 0
            assert table.owner(ranges[0]) == instance_id("aggregate", "C")
            assert not table.is_paused(ranges[0])
            # the stream keeps closing windows after the flip
            sink = runtime.sink_unit()
            before = len(sink.results)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if len(sink.results) > before:
                    break
                time.sleep(0.1)
            assert len(sink.results) > before
            assert registry.value(metrics_mod.KEY_RANGE_MOVES_TOTAL,
                                  reason="drain",
                                  edge="sensor>aggregate") == 1
        finally:
            runtime.stop()
