"""End-to-end tests for the high-level SwingRuntime."""

import pytest

from repro.core.exceptions import RuntimeStateError
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.core.tuples import DataTuple
from repro.runtime.app_runner import SwingRuntime, order_results


def build_graph(items=20):
    return (GraphBuilder("app")
            .source("src", lambda: IterableSource(
                [{"x": i} for i in range(items)]))
            .unit("double", lambda: LambdaUnit(lambda v: {"y": v["x"] * 2}))
            .sink("snk", CollectingSink)
            .chain("src", "double", "snk")
            .build())


class TestValidation:
    def test_master_id_collision_rejected(self):
        with pytest.raises(RuntimeStateError):
            SwingRuntime(build_graph(), worker_ids=["A"], master_id="A")

    def test_needs_workers(self):
        with pytest.raises(RuntimeStateError):
            SwingRuntime(build_graph(), worker_ids=[])


class TestRun:
    @pytest.mark.parametrize("policy", ["RR", "LRS"])
    def test_all_results_delivered(self, policy):
        runtime = SwingRuntime(build_graph(items=15), worker_ids=["B", "C"],
                               policy=policy, source_rate=300.0)
        results = runtime.run(until_idle=0.4, timeout=30.0)
        values = sorted(data.get_value("y") for data in results)
        assert values == [i * 2 for i in range(15)]

    def test_results_in_order_after_reordering(self):
        runtime = SwingRuntime(build_graph(items=30),
                               worker_ids=["B", "C", "D"],
                               policy="RR", source_rate=400.0,
                               slowdowns={"B": 30.0})
        results = runtime.run(until_idle=0.5, timeout=30.0)
        seqs = [data.seq for data in results]
        assert seqs == sorted(seqs)

    def test_slow_worker_gets_less_under_lrs(self):
        runtime = SwingRuntime(build_graph(items=120),
                               worker_ids=["fastw", "slobw"],
                               policy="LRS", source_rate=300.0,
                               slowdowns={"slobw": 400.0}, seed=1)
        runtime.run(until_idle=0.6, timeout=60.0)
        fast = runtime.workers["fastw"].processed_count
        slow = runtime.workers["slobw"].processed_count
        assert fast + slow > 0
        assert fast > slow

    def test_context_manager_stops(self):
        runtime = SwingRuntime(build_graph(items=5), worker_ids=["B"],
                               source_rate=200.0)
        with runtime as active:
            active.start()
        assert not runtime._running

    def test_double_start_rejected(self):
        runtime = SwingRuntime(build_graph(items=5), worker_ids=["B"],
                               source_rate=200.0)
        runtime.start()
        try:
            with pytest.raises(RuntimeStateError):
                runtime.start()
        finally:
            runtime.stop()


class TestOrderResults:
    def _tuples(self, seqs):
        return [DataTuple(values={"v": seq}, seq=seq) for seq in seqs]

    def test_orders_shuffled_results(self):
        results = order_results(self._tuples([3, 0, 2, 1]), source_rate=24.0)
        assert [data.seq for data in results] == [0, 1, 2, 3]

    def test_empty(self):
        assert order_results([], source_rate=24.0) == []

    def test_duplicates_collapsed(self):
        results = order_results(self._tuples([0, 0, 1]), source_rate=24.0)
        assert [data.seq for data in results] == [0, 1]


class TestPerformanceRequirement:
    def test_requirement_sets_source_rate(self):
        from repro.core.requirements import PerformanceRequirement
        runtime = SwingRuntime(build_graph(items=5), worker_ids=["B"],
                               requirement=PerformanceRequirement(
                                   input_rate=50.0))
        assert runtime.master.runtime.source_rate == 50.0
        assert runtime.requirement.reorder_capacity() == 50

    def test_default_requirement_from_source_rate(self):
        runtime = SwingRuntime(build_graph(items=5), worker_ids=["B"],
                               source_rate=12.0)
        assert runtime.requirement.input_rate == 12.0

    def test_meets_requirement(self):
        runtime = SwingRuntime(build_graph(items=5), worker_ids=["B"],
                               source_rate=24.0)
        assert runtime.meets_requirement(23.8)
        assert not runtime.meets_requirement(10.0)
