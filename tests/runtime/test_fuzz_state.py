"""Fuzzing the state-snapshot codec: hostile bytes must fail cleanly.

A snapshot frame is decoded at the most fragile moment of a keyed
pipeline's life — mid-migration, with the moving range paused — so its
decoder gets the same adversarial treatment as the wire and checkpoint
codecs: random bytes, truncations and bit flips may only ever produce a
valid snapshot or :class:`SerializationError`, and version skew must be
rejected loudly rather than silently installed as wrong state.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import SerializationError
from repro.core.keyed import KEY_SPACE, KeyRange, hash_key
from repro.core.state import (STATE_SNAPSHOT_VERSION, StateSnapshot,
                              decode_state_snapshot, encode_state_snapshot)
from repro.runtime.serialization import encode_value

#: wire-expressible per-key state payloads (what the primitives store)
_STATE_DICTS = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(min_value=-2 ** 48, max_value=2 ** 48),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=12)),
    max_size=4)


@st.composite
def _snapshots(draw):
    lo = draw(st.integers(min_value=0, max_value=KEY_SPACE - 2))
    hi = draw(st.integers(min_value=lo + 1, max_value=KEY_SPACE))
    key_range = KeyRange(lo, hi)
    # entries must hash inside the range — generate candidates and keep
    # the ones that land there (strict decode enforces this invariant)
    candidates = draw(st.lists(st.text(min_size=1, max_size=10),
                               max_size=8, unique=True))
    entries = tuple((key, draw(_STATE_DICTS)) for key in candidates
                    if key_range.contains(hash_key(key)))
    return StateSnapshot(
        tenant=draw(st.text(max_size=6)),
        unit=draw(st.text(min_size=1, max_size=8)),
        key_range=key_range, entries=entries)


class TestSnapshotRoundtripFuzz:
    @given(_snapshots())
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, snapshot):
        decoded = decode_state_snapshot(encode_state_snapshot(snapshot))
        assert decoded.tenant == snapshot.tenant
        assert decoded.unit == snapshot.unit
        assert decoded.key_range == snapshot.key_range
        assert dict(decoded.entries) == dict(snapshot.entries)


class TestSnapshotHostileBytes:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_state_snapshot(data)
        except SerializationError:
            pass  # the only acceptable failure mode

    @given(_snapshots(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncation_always_fails_cleanly(self, snapshot, data):
        frame = encode_state_snapshot(snapshot)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(SerializationError):
            decode_state_snapshot(frame[:cut])

    @given(_snapshots(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_bit_flips_never_crash(self, snapshot, data):
        frame = bytearray(encode_state_snapshot(snapshot))
        index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[index] ^= 1 << bit
        try:
            decode_state_snapshot(bytes(frame))
        except SerializationError:
            pass  # a flip may still decode (payload content) or fail cleanly


class TestSnapshotVersionSkew:
    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
           .filter(lambda version: version != STATE_SNAPSHOT_VERSION))
    @settings(max_examples=50)
    def test_foreign_versions_rejected(self, version):
        payload = encode_value({"version": version, "unit": "u",
                                "lo": 0, "hi": 16, "entries": []})
        with pytest.raises(SerializationError, match="version"):
            decode_state_snapshot(payload)

    @given(st.text(min_size=1, max_size=12)
           .filter(lambda name: name not in {"version", "tenant", "unit",
                                             "lo", "hi", "entries"}))
    @settings(max_examples=50)
    def test_unknown_future_fields_rejected(self, field):
        payload = encode_value({"version": STATE_SNAPSHOT_VERSION,
                                "unit": "u", "lo": 0, "hi": 16,
                                "entries": [], field: []})
        with pytest.raises(SerializationError, match="unknown fields"):
            decode_state_snapshot(payload)
