"""Tests for worker/master deployment and membership."""

import time

import pytest

from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime.fabric import InProcFabric
from repro.runtime.master import Master, Placement
from repro.runtime.worker import WorkerRuntime


def build_graph(items=10):
    return (GraphBuilder("app")
            .source("src", lambda: IterableSource(
                [{"x": i} for i in range(items)]))
            .unit("f", lambda: LambdaUnit(lambda v: {"y": v["x"] + 1}))
            .sink("snk", CollectingSink)
            .chain("src", "f", "snk")
            .build())


class TestPlacement:
    def test_default_puts_io_on_master(self):
        placement = Placement.default(build_graph(), "A", ["B", "C"])
        assert placement.workers_for("src") == ["A"]
        assert placement.workers_for("snk") == ["A"]
        assert placement.workers_for("f") == ["B", "C"]

    def test_no_workers_falls_back_to_master(self):
        placement = Placement.default(build_graph(), "A", [])
        assert placement.workers_for("f") == ["A"]

    def test_units_on(self):
        placement = Placement.default(build_graph(), "A", ["B"])
        assert placement.units_on("A") == ["snk", "src"]
        assert placement.units_on("B") == ["f"]

    def test_instances_of(self):
        placement = Placement.default(build_graph(), "A", ["B", "C"])
        assert placement.instances_of("f") == ["f@B", "f@C"]

    def test_add_remove_worker(self):
        placement = Placement.default(build_graph(), "A", ["B"])
        placement.add_worker(build_graph(), "C")
        assert placement.workers_for("f") == ["B", "C"]
        placement.remove_worker("B")
        assert placement.workers_for("f") == ["C"]

    def test_unknown_unit_rejected(self):
        from repro.core.exceptions import DeploymentError
        placement = Placement.default(build_graph(), "A", [])
        with pytest.raises(DeploymentError):
            placement.workers_for("ghost")


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestMasterWorkerFlow:
    def _swarm(self, worker_ids=("B", "C"), items=10):
        fabric = InProcFabric()
        graph = build_graph(items)
        master = Master("A", fabric, graph, policy="RR", source_rate=500.0,
                        control_interval=0.1)
        workers = {worker_id: WorkerRuntime(worker_id, fabric, graph,
                                            policy="RR")
                   for worker_id in worker_ids}
        master.runtime.start()
        for worker in workers.values():
            worker.start()
            worker.join_master("A")
        assert wait_until(lambda: set(worker_ids) <= set(master.worker_ids))
        return fabric, master, workers

    def _teardown(self, master, workers):
        master.stop()
        for worker in workers.values():
            worker.stop()
        master.runtime.stop()

    def test_join_registers_workers(self):
        _fabric, master, workers = self._swarm()
        try:
            assert sorted(master.worker_ids) == ["B", "C"]
        finally:
            self._teardown(master, workers)

    def test_deploy_activates_units(self):
        _fabric, master, workers = self._swarm()
        try:
            master.deploy()
            assert wait_until(lambda: workers["B"].hosted_units() == ["f"])
            assert wait_until(
                lambda: master.runtime.hosted_units() == ["snk", "src"])
        finally:
            self._teardown(master, workers)

    def test_start_before_deploy_rejected(self):
        from repro.core.exceptions import DeploymentError
        _fabric, master, workers = self._swarm()
        try:
            with pytest.raises(DeploymentError):
                master.start()
        finally:
            self._teardown(master, workers)

    def test_end_to_end_results(self):
        _fabric, master, workers = self._swarm(items=8)
        try:
            master.deploy()
            assert wait_until(lambda: workers["B"].deployed.is_set())
            master.start()
            sink = master.runtime.unit("snk")
            assert wait_until(lambda: len(sink.results) == 8, timeout=10.0)
            values = sorted(data.get_value("y") for data in sink.results)
            assert values == list(range(1, 9))
        finally:
            self._teardown(master, workers)

    def test_work_spread_across_workers(self):
        _fabric, master, workers = self._swarm(items=20)
        try:
            master.deploy()
            assert wait_until(lambda: workers["C"].deployed.is_set())
            master.start()
            sink = master.runtime.unit("snk")
            assert wait_until(lambda: len(sink.results) == 20, timeout=10.0)
            # RR must have split the 20 tuples between B and C.
            assert workers["B"].processed_count == 10
            assert workers["C"].processed_count == 10
        finally:
            self._teardown(master, workers)

    def test_late_join_deployed_and_routed(self):
        fabric, master, workers = self._swarm(worker_ids=("B",), items=0)
        try:
            master.deploy()
            late = WorkerRuntime("D", fabric, build_graph(), policy="RR")
            late.start()
            late.join_master("A")
            assert wait_until(lambda: "D" in master.worker_ids)
            assert wait_until(lambda: late.hosted_units() == ["f"])
            dispatcher = master.runtime.dispatcher("src")
            assert wait_until(
                lambda: "f@D" in dispatcher.downstream_instances())
            late.stop()
        finally:
            self._teardown(master, workers)

    def test_leave_removes_instances(self):
        _fabric, master, workers = self._swarm(items=0)
        try:
            master.deploy()
            assert wait_until(lambda: master.runtime.deployed.is_set())
            master.handle_leave("C")
            dispatcher = master.runtime.dispatcher("src")
            assert wait_until(
                lambda: dispatcher.downstream_instances() == ["f@B"])
        finally:
            self._teardown(master, workers)

    def test_duplicate_join_ignored(self):
        _fabric, master, workers = self._swarm()
        try:
            master.handle_join("B")
            assert master.worker_ids.count("B") == 1
        finally:
            self._teardown(master, workers)


class TestSourcePumpShutdown:
    def test_stop_does_not_wait_out_the_source_interval(self):
        # Regression: the source pump used to pace with time.sleep(), so
        # stop() blocked for up to a full source interval (5 s here).
        fabric = InProcFabric()
        graph = build_graph(items=1000)
        master = Master("A", fabric, graph, policy="RR", source_rate=0.2,
                        control_interval=0.1)
        master.runtime.start()
        try:
            master.deploy()
            assert wait_until(lambda: master.runtime.deployed.is_set())
            master.start()
            sink = master.runtime.unit("snk")
            assert wait_until(lambda: len(sink.results) >= 1, timeout=5.0)
        finally:
            started = time.monotonic()
            master.stop()
            master.runtime.stop()
            elapsed = time.monotonic() - started
        assert elapsed < 2.0
