"""Tests for control/data message envelopes."""

import pytest

from repro.core.exceptions import SerializationError
from repro.runtime import messages
from repro.runtime.messages import Message


class TestEnvelope:
    def test_roundtrip(self):
        message = Message(messages.DATA, {"seq": 1, "tuple": b"x"})
        decoded = Message.decode(message.encode())
        assert decoded.kind == messages.DATA
        assert decoded.payload == {"seq": 1, "tuple": b"x"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            Message("gossip")

    def test_malformed_frame_rejected(self):
        from repro.runtime.serialization import encode_value
        with pytest.raises(SerializationError):
            Message.decode(encode_value([1, 2]))


class TestConstructors:
    def test_join(self):
        message = messages.join_message("B")
        assert message.kind == messages.JOIN
        assert message.payload["worker_id"] == "B"

    def test_deploy_carries_units_and_downstreams(self):
        message = messages.deploy_message(
            "B", ["detector"], {"detector>recognizer": ["recognizer@C"]})
        assert message.payload["unit_names"] == ["detector"]
        assert message.payload["downstream_map"] == {
            "detector>recognizer": ["recognizer@C"]}

    def test_data_message(self):
        message = messages.data_message("detector", b"payload", seq=3,
                                        sent_at=1.5)
        assert message.payload["unit"] == "detector"
        assert message.payload["seq"] == 3
        assert message.payload["sent_at"] == 1.5

    def test_ack_echoes_timestamp(self):
        message = messages.ack_message(seq=3, sent_at=1.5,
                                       processing_delay=0.25)
        assert message.payload["sent_at"] == 1.5
        assert message.payload["processing_delay"] == 0.25

    def test_all_constructors_encode(self):
        for message in (messages.join_message("B"),
                        messages.welcome_message("B"),
                        messages.start_message(), messages.stop_message(),
                        messages.leave_message("B")):
            assert Message.decode(message.encode()).kind == message.kind
