"""Tests for discovery services."""

import threading

import pytest

from repro.core.exceptions import DiscoveryError
from repro.runtime.discovery import (LocalDiscovery, UdpBeacon,
                                     listen_for_beacon)


class TestLocalDiscovery:
    def test_announce_then_lookup(self):
        discovery = LocalDiscovery()
        discovery.announce("swing-master", ("127.0.0.1", 9000))
        assert discovery.lookup("swing-master") == ("127.0.0.1", 9000)

    def test_lookup_blocks_until_announced(self):
        discovery = LocalDiscovery()

        def _announce_later():
            discovery.announce("late", "addr")

        thread = threading.Timer(0.05, _announce_later)
        thread.start()
        assert discovery.lookup("late", timeout=2.0) == "addr"
        thread.join()

    def test_lookup_timeout(self):
        discovery = LocalDiscovery()
        with pytest.raises(DiscoveryError):
            discovery.lookup("ghost", timeout=0.05)

    def test_withdraw(self):
        discovery = LocalDiscovery()
        discovery.announce("svc", "addr")
        discovery.withdraw("svc")
        with pytest.raises(DiscoveryError):
            discovery.lookup("svc", timeout=0.05)


class TestUdpBeacon:
    def test_beacon_heard_by_listener(self):
        beacon = UdpBeacon("swing-test", ("127.0.0.1", 12345),
                           beacon_port=48_911, interval=0.05)
        beacon.start()
        try:
            address = listen_for_beacon("swing-test", beacon_port=48_911,
                                        timeout=5.0)
            assert address == ("127.0.0.1", 12345)
        finally:
            beacon.stop()

    def test_listener_ignores_other_services(self):
        beacon = UdpBeacon("other-app", ("127.0.0.1", 1), beacon_port=48_912,
                           interval=0.05)
        beacon.start()
        try:
            with pytest.raises(DiscoveryError):
                listen_for_beacon("swing-test", beacon_port=48_912,
                                  timeout=0.3)
        finally:
            beacon.stop()

    def test_no_beacon_times_out(self):
        with pytest.raises(DiscoveryError):
            listen_for_beacon("nothing", beacon_port=48_913, timeout=0.1)
