"""Tests for the runtime upstream dispatcher."""

from collections import Counter

import pytest

from repro.core.tuples import DataTuple
from repro.runtime import messages
from repro.runtime.dispatcher import (UpstreamDispatcher, instance_id,
                                      split_instance)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestInstanceIds:
    def test_roundtrip(self):
        assert split_instance(instance_id("det", "B")) == ("det", "B")

    def test_malformed_rejected(self):
        from repro.core.exceptions import RoutingError
        with pytest.raises(RoutingError):
            split_instance("nounit")
        with pytest.raises(RoutingError):
            split_instance("@B")


def make_dispatcher(policy="RR", sent=None, fail_targets=(), clock=None):
    sent = sent if sent is not None else []
    fail_targets = set(fail_targets)

    def send(worker_id, message):
        if worker_id in fail_targets:
            raise ConnectionError("link down")
        sent.append((worker_id, message))

    dispatcher = UpstreamDispatcher("src", send=send, policy=policy, seed=1,
                                    control_interval=0.5,
                                    clock=clock or FakeClock())
    return dispatcher, sent


class TestDispatch:
    def test_routes_to_downstream_instance(self):
        dispatcher, sent = make_dispatcher()
        dispatcher.set_downstreams(["det@B"])
        result = dispatcher.dispatch(DataTuple(values={"x": 1}, seq=0))
        assert result == "det@B"
        worker_id, message = sent[0]
        assert worker_id == "B"
        assert message.kind == messages.DATA
        assert message.payload["unit"] == "det"
        assert message.payload["edge"] == "src"

    def test_round_robin_across_instances(self):
        dispatcher, sent = make_dispatcher()
        dispatcher.set_downstreams(["det@B", "det@C"])
        for seq in range(4):
            dispatcher.dispatch(DataTuple(values={"x": 1}, seq=seq))
        workers = Counter(worker for worker, _ in sent)
        assert workers == {"B": 2, "C": 2}

    def test_no_downstreams_returns_none(self):
        dispatcher, _sent = make_dispatcher()
        assert dispatcher.dispatch(DataTuple(values={}, seq=0)) is None

    def test_broken_link_falls_back(self):
        dispatcher, sent = make_dispatcher(fail_targets={"B"})
        dispatcher.set_downstreams(["det@B", "det@C"])
        for seq in range(6):
            dispatcher.dispatch(DataTuple(values={}, seq=seq))
        assert all(worker == "C" for worker, _ in sent)
        # The dead instance stays a member (probing may resurrect it)
        # but is excluded from live routing.
        assert dispatcher.downstream_instances() == ["det@B", "det@C"]
        assert dispatcher.live_instances() == ["det@C"]
        assert dispatcher.stats()["det@B"].alive is False

    def test_marked_dead_resurrected_by_ack(self):
        fail_targets = {"B"}
        dispatcher, sent = make_dispatcher(fail_targets=fail_targets)
        dispatcher.set_downstreams(["det@B", "det@C"])
        dispatcher.dispatch(DataTuple(values={}, seq=0))
        assert dispatcher.live_instances() == ["det@C"]
        # The link heals and a probe's ACK arrives: B is live again.
        fail_targets.clear()
        dispatcher._tracker.record_send(99, "det@B", 0.0)
        dispatcher.on_ack(seq=99, processing_delay=0.01)
        assert dispatcher.live_instances() == ["det@B", "det@C"]

    def test_all_links_broken_returns_none(self):
        dispatcher, sent = make_dispatcher(fail_targets={"B", "C"})
        dispatcher.set_downstreams(["det@B", "det@C"])
        assert dispatcher.dispatch(DataTuple(values={}, seq=0)) is None
        assert sent == []


class TestAcks:
    def test_ack_updates_latency_stats(self):
        clock = FakeClock()
        dispatcher, _sent = make_dispatcher(policy="LRS", clock=clock)
        dispatcher.set_downstreams(["det@B"])
        dispatcher.dispatch(DataTuple(values={}, seq=0))
        clock.advance(0.3)
        dispatcher.on_ack(seq=0, processing_delay=0.1)
        stats = dispatcher.stats()["det@B"]
        assert stats.latency == pytest.approx(0.3)
        assert stats.processing_delay == pytest.approx(0.1)
        assert dispatcher.ack_count == 1

    def test_unknown_ack_ignored(self):
        dispatcher, _sent = make_dispatcher()
        dispatcher.set_downstreams(["det@B"])
        dispatcher.on_ack(seq=123, processing_delay=0.1)
        assert dispatcher.ack_count == 0


class TestControl:
    def test_policy_updates_on_interval(self):
        clock = FakeClock()
        dispatcher, _sent = make_dispatcher(policy="LRS", clock=clock)
        dispatcher.set_downstreams(["det@fast", "det@slow"])
        # Feed asymmetric latencies.
        for seq in range(20):
            target = dispatcher.dispatch(DataTuple(values={}, seq=seq))
            clock.advance(0.01 if target == "det@fast" else 0.2)
            dispatcher.on_ack(seq=seq, processing_delay=0.01)
        clock.advance(1.0)
        decision = dispatcher.force_update()
        # With Worker Selection the slow instance may be excluded entirely.
        assert decision.weights["det@fast"] > decision.weights.get(
            "det@slow", 0.0)
        assert "det@fast" in decision.selected

    def test_membership_reconciliation(self):
        dispatcher, _sent = make_dispatcher()
        dispatcher.set_downstreams(["det@B", "det@C"])
        dispatcher.set_downstreams(["det@C", "det@D"])
        assert dispatcher.downstream_instances() == ["det@C", "det@D"]

    def test_add_remove_individual(self):
        dispatcher, _sent = make_dispatcher()
        dispatcher.add_downstream("det@B")
        dispatcher.add_downstream("det@B")  # idempotent
        assert dispatcher.downstream_instances() == ["det@B"]
        dispatcher.remove_downstream("det@B")
        assert dispatcher.downstream_instances() == []
