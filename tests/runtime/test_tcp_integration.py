"""End-to-end integration over real TCP sockets + UDP discovery.

Exercises the full Fig. 3 workflow on the wire: the master announces
itself with a UDP beacon (the NSD substitute), workers discover and dial
it, the graph deploys over TCP, and tuples/ACKs flow through the
length-prefixed binary protocol between real sockets on localhost.
"""

import time

import pytest

from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime.discovery import UdpBeacon, listen_for_beacon
from repro.runtime.fabric import TcpFabric
from repro.runtime.master import Master
from repro.runtime.worker import WorkerRuntime

BEACON_PORT = 48_921


def build_graph(items):
    return (GraphBuilder("tcp-app")
            .source("src", lambda: IterableSource(
                [{"x": i} for i in range(items)]))
            .unit("triple", lambda: LambdaUnit(lambda v: {"y": v["x"] * 3}))
            .sink("snk", CollectingSink)
            .chain("src", "triple", "snk")
            .build())


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def test_full_tcp_swarm_with_udp_discovery():
    items = 12
    graph = build_graph(items)

    master_fabric = TcpFabric("A")
    worker_fabrics = {}
    workers = {}
    beacon = UdpBeacon("swing-tcp-test", master_fabric.address,
                       beacon_port=BEACON_PORT, interval=0.05)
    master = Master("A", master_fabric, graph, policy="RR",
                    source_rate=100.0, control_interval=0.2)
    try:
        beacon.start()
        master.runtime.start()

        for worker_id in ("B", "C"):
            # Worker side of the workflow: hear the beacon, dial in.
            address = listen_for_beacon("swing-tcp-test",
                                        beacon_port=BEACON_PORT, timeout=5.0)
            fabric = TcpFabric(worker_id)
            fabric.learn("A", address)
            worker_fabrics[worker_id] = fabric
            worker = WorkerRuntime(worker_id, fabric, graph, policy="RR")
            workers[worker_id] = worker
            worker.start()
            worker.join_master("A")
            # The master learns the worker's data-plane address.
            master_fabric.learn(worker_id, fabric.address)

        assert wait_until(lambda: {"B", "C"} <= set(master.worker_ids))
        # Peers must know each other's addresses before deployment wires
        # them together (the master's DEPLOY carries instance IDs).
        for worker_id, fabric in worker_fabrics.items():
            for other_id, other in worker_fabrics.items():
                if worker_id != other_id:
                    fabric.learn(other_id, other.address)
            fabric.learn("A", master_fabric.address)

        master.deploy()
        assert wait_until(lambda: all(w.deployed.is_set()
                                      for w in workers.values()))
        master.start()

        sink = master.runtime.unit("snk")
        assert wait_until(lambda: len(sink.results) == items, timeout=30.0)
        values = sorted(data.get_value("y") for data in sink.results)
        assert values == [i * 3 for i in range(items)]
        # Both workers processed over real sockets.
        assert workers["B"].processed_count + workers["C"].processed_count \
            == items
        assert workers["B"].processed_count > 0
        assert workers["C"].processed_count > 0
    finally:
        beacon.stop()
        master.stop()
        for worker in workers.values():
            worker.stop()
        master.runtime.stop()
        for fabric in worker_fabrics.values():
            fabric.close()
        master_fabric.close()
