"""Fuzzing the checkpoint codec: hostile bytes must fail cleanly.

A checkpoint is read at the most fragile moment of the system's life —
master recovery — so its decoder gets the same treatment as the wire
codec: random bytes, truncations and bit flips may only ever produce a
valid checkpoint or :class:`SerializationError`, and version skew
(fields or versions from a future build) must be rejected loudly rather
than silently truncated into a wrong restore.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import SerializationError
from repro.core.recovery import (ControlPlaneCheckpoint, RetainedEntry,
                                 SessionState)
from repro.runtime.serialization import encode_value

#: seeded generator over the checkpoint's full value space
_WORKER_IDS = st.lists(st.text(min_size=1, max_size=6), max_size=4,
                       unique=True).map(tuple)

_SESSIONS = st.lists(
    st.builds(
        SessionState,
        tenant=st.text(max_size=6),
        started=st.booleans(),
        assignments=st.lists(
            st.tuples(st.text(min_size=1, max_size=8),
                      st.lists(st.text(min_size=1, max_size=4),
                               max_size=3).map(tuple)),
            max_size=3, unique_by=lambda pair: pair[0])
        .map(lambda pairs: tuple(sorted(pairs)))),
    max_size=3).map(tuple)

_ENTRIES = st.lists(
    st.builds(
        RetainedEntry,
        seq=st.integers(min_value=0, max_value=2 ** 48),
        attempt=st.integers(min_value=1, max_value=16),
        deadline=st.one_of(st.none(),
                           st.floats(min_value=0.0, max_value=1e6,
                                     allow_nan=False)),
        frame=st.binary(max_size=40),
        seqs=st.lists(st.integers(min_value=0, max_value=2 ** 48),
                      max_size=4).map(tuple)),
    max_size=3).map(tuple)

_CHECKPOINTS = st.builds(
    ControlPlaneCheckpoint,
    epoch=st.integers(min_value=0, max_value=2 ** 31),
    workers=_WORKER_IDS,
    sessions=_SESSIONS,
    retention=st.lists(
        st.tuples(st.text(min_size=1, max_size=10), _ENTRIES),
        max_size=2, unique_by=lambda pair: pair[0])
    .map(lambda pairs: tuple(sorted(pairs))),
    dedup=st.lists(st.tuples(st.text(min_size=1, max_size=8),
                             st.integers(min_value=0, max_value=2 ** 48)),
                   max_size=5).map(tuple),
    key_ranges=st.lists(
        st.tuples(st.text(min_size=1, max_size=10),
                  st.lists(st.tuples(st.integers(min_value=0,
                                                 max_value=2 ** 15),
                                     st.integers(min_value=2 ** 15 + 1,
                                                 max_value=2 ** 16),
                                     st.text(min_size=1, max_size=8))
                           .map(lambda t: (t[0], t[1], t[2])),
                           max_size=3).map(tuple)),
        max_size=2, unique_by=lambda pair: pair[0])
    .map(lambda pairs: tuple(sorted(pairs))))


class TestCheckpointRoundtripFuzz:
    @given(_CHECKPOINTS)
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, checkpoint):
        assert ControlPlaneCheckpoint.decode(checkpoint.encode()) \
            == checkpoint


class TestCheckpointHostileBytes:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            ControlPlaneCheckpoint.decode(data)
        except SerializationError:
            pass  # the only acceptable failure mode

    @given(_CHECKPOINTS, st.data())
    @settings(max_examples=100, deadline=None)
    def test_truncation_always_fails_cleanly(self, checkpoint, data):
        frame = checkpoint.encode()
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(SerializationError):
            ControlPlaneCheckpoint.decode(frame[:cut])

    @given(_CHECKPOINTS, st.data())
    @settings(max_examples=150, deadline=None)
    def test_bit_flips_never_crash(self, checkpoint, data):
        frame = bytearray(checkpoint.encode())
        index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[index] ^= 1 << bit
        try:
            ControlPlaneCheckpoint.decode(bytes(frame))
        except SerializationError:
            pass  # a flip may still decode (payload content) or fail cleanly


class TestVersionSkew:
    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
           .filter(lambda version: version != 1))
    @settings(max_examples=50)
    def test_foreign_versions_rejected(self, version):
        payload = encode_value({"version": version, "epoch": 0})
        with pytest.raises(SerializationError, match="version"):
            ControlPlaneCheckpoint.decode(payload)

    @given(st.text(min_size=1, max_size=12)
           .filter(lambda name: name not in {"version", "epoch", "workers",
                                             "sessions", "retention",
                                             "dedup", "key_ranges"}))
    @settings(max_examples=50)
    def test_unknown_future_fields_rejected(self, field):
        payload = encode_value({"version": 1, field: []})
        with pytest.raises(SerializationError, match="unknown fields"):
            ControlPlaneCheckpoint.decode(payload)
