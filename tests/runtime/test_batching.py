"""Tests for the batched zero-copy data plane.

Covers the flush-policy primitives, the dispatcher's batched send path
(including the batch-of-one wire-compat guarantee), the controller's
per-batch replay retention, and an end-to-end runtime flow where every
hop carries multi-tuple BATCH frames.
"""

import time

import pytest

from repro import metrics as metrics_mod
from repro.core.batching import BatchBuffer, BatchConfig
from repro.core.controller import LrsController, PolicyConfig
from repro.core.delivery import AT_LEAST_ONCE, DeliveryConfig, EVICT_SHED
from repro.core.exceptions import SwingError
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.core.tuples import DataTuple
from repro.runtime import messages
from repro.runtime.dispatcher import UpstreamDispatcher
from repro.runtime.fabric import InProcFabric, Mailbox
from repro.runtime.serialization import decode_batch, encode_tuple
from repro.runtime.worker import WorkerRuntime


class TestBatchConfig:
    def test_defaults_disabled(self):
        config = BatchConfig()
        assert config.max_tuples == 1
        assert not config.enabled

    def test_enabled_above_one(self):
        assert BatchConfig(max_tuples=2).enabled

    def test_max_tuples_below_one_rejected(self):
        with pytest.raises(SwingError):
            BatchConfig(max_tuples=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(SwingError):
            BatchConfig(max_delay=-0.1)


class TestBatchBuffer:
    def test_append_reports_full(self):
        buffer = BatchBuffer(BatchConfig(max_tuples=2, max_delay=1.0))
        assert buffer.append("a", now=0.0) is False
        assert buffer.append("b", now=0.0) is True
        assert len(buffer) == 2

    def test_due_after_max_delay(self):
        buffer = BatchBuffer(BatchConfig(max_tuples=8, max_delay=0.5))
        assert not buffer.due(0.0)  # empty: never due
        buffer.append("a", now=1.0)
        assert not buffer.due(1.4)
        assert buffer.due(1.5)

    def test_take_drains_and_resets_age(self):
        buffer = BatchBuffer(BatchConfig(max_tuples=8, max_delay=0.5))
        buffer.append("a", now=1.0)
        buffer.append("b", now=1.1)
        assert buffer.take() == ("a", "b")
        assert len(buffer) == 0
        assert not buffer.due(10.0)


class _FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


def _dispatcher(captured, batching=None, clock=None, policy="RR",
                delivery=None):
    config = PolicyConfig(policy=policy, batching=batching,
                          delivery=delivery)
    dispatcher = UpstreamDispatcher(
        "src", send=lambda target, msg: captured.append((target, msg)),
        edge="src>f", config=config, clock=clock or _FakeClock(),
        registry=metrics_mod.MetricsRegistry())
    dispatcher.set_downstreams(["f@W"])
    return dispatcher


def _tuples(count, start_seq=0):
    return [DataTuple(values={"x": i}, seq=start_seq + i)
            for i in range(count)]


class TestDispatcherBatching:
    def test_flushes_when_full(self):
        captured = []
        dispatcher = _dispatcher(captured,
                                 BatchConfig(max_tuples=3, max_delay=60.0))
        data = _tuples(3)
        assert dispatcher.dispatch(data[0]) is None
        assert dispatcher.dispatch(data[1]) is None
        assert dispatcher.dispatch(data[2]) == "f@W"
        assert len(captured) == 1
        target, message = captured[0]
        assert target == "W"
        assert message.kind == messages.BATCH
        assert message.payload["seqs"] == [0, 1, 2]
        assert message.payload["edge"] == "src>f"
        decoded = decode_batch(message.payload["batch"])
        assert [d.seq for d in decoded] == [0, 1, 2]
        assert [d.values["x"] for d in decoded] == [0, 1, 2]
        assert dispatcher.dispatched == 3
        assert dispatcher.pending_batch() == 0

    def test_flush_of_one_uses_legacy_data_message(self):
        captured = []
        dispatcher = _dispatcher(captured,
                                 BatchConfig(max_tuples=4, max_delay=60.0))
        data = _tuples(1)[0]
        assert dispatcher.dispatch(data) is None
        assert dispatcher.pending_batch() == 1
        assert dispatcher.flush() == "f@W"
        _target, message = captured[0]
        assert message.kind == messages.DATA
        assert message.payload["tuple"] == encode_tuple(data)

    def test_batch_of_one_wire_identical_to_unbatched(self):
        clock = _FakeClock()
        batched_captured, plain_captured = [], []
        batched = _dispatcher(batched_captured,
                              BatchConfig(max_tuples=4, max_delay=60.0),
                              clock=clock)
        plain = _dispatcher(plain_captured, None, clock=clock)
        data = DataTuple(values={"frame": b"\x01\x02"}, seq=7)
        batched.dispatch(data)
        batched.flush()
        plain.dispatch(data)
        assert len(batched_captured) == len(plain_captured) == 1
        assert (batched_captured[0][1].encode()
                == plain_captured[0][1].encode())

    def test_maybe_flush_only_when_due(self):
        captured = []
        clock = _FakeClock()
        dispatcher = _dispatcher(captured,
                                 BatchConfig(max_tuples=8, max_delay=0.5),
                                 clock=clock)
        dispatcher.dispatch(_tuples(1)[0])
        assert dispatcher.maybe_flush() is None
        clock.now += 0.6
        assert dispatcher.maybe_flush() == "f@W"
        assert len(captured) == 1

    def test_batched_ack_credits_every_member(self):
        captured = []
        dispatcher = _dispatcher(captured,
                                 BatchConfig(max_tuples=3, max_delay=60.0))
        for data in _tuples(3):
            dispatcher.dispatch(data)
        assert dispatcher.ack_count == 0
        dispatcher.on_ack_batch([0, 1, 2], processing_delay=0.01)
        assert dispatcher.ack_count == 3

    def test_batch_size_histogram_observed(self):
        captured = []
        dispatcher = _dispatcher(captured,
                                 BatchConfig(max_tuples=2, max_delay=60.0))
        for data in _tuples(2):
            dispatcher.dispatch(data)
        histogram = dispatcher._registry.histogram(
            metrics_mod.BATCH_SIZE, buckets=metrics_mod.BATCH_SIZE_BUCKETS,
            edge="src>f")
        assert histogram.count == 1
        assert histogram.total == 2.0


class _StubEgress:
    """Egress recording every send; always succeeds at the given clock."""

    def __init__(self, clock):
        self._clock = clock
        self.sent = []

    def send(self, downstream_id, seq, context=None):
        self.sent.append((downstream_id, seq, context))
        return self._clock()


def _controller(clock, delivery=None):
    config = PolicyConfig(policy="RR", delivery=delivery)
    controller = LrsController(config, clock=clock,
                               egress=_StubEgress(clock),
                               registry=metrics_mod.MetricsRegistry())
    controller.add_downstream("W")
    return controller


class TestControllerBatchReplay:
    DELIVERY = DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=16)

    def test_one_retention_entry_covers_the_batch(self):
        controller = _controller(_FakeClock(), delivery=self.DELIVERY)
        assert controller.dispatch_batch([1, 2, 3], context=("a", "b", "c"))
        assert controller.replay_depth() == 1
        for seq in (1, 2, 3):
            assert controller.replay_holds(seq)

    def test_per_member_acks_release_on_last(self):
        controller = _controller(_FakeClock(), delivery=self.DELIVERY)
        controller.dispatch_batch([1, 2, 3], context=("a", "b", "c"))
        controller.on_ack(2)
        assert controller.replay_depth() == 1
        assert not controller.replay_holds(2)
        controller.on_ack(1)
        assert controller.replay_depth() == 1
        controller.on_ack(3)
        assert controller.replay_depth() == 0

    def test_batched_ack_releases_wholesale(self):
        controller = _controller(_FakeClock(), delivery=self.DELIVERY)
        controller.dispatch_batch([4, 5, 6], context=("a", "b", "c"))
        result = controller.on_ack_batch([4, 5, 6], processing_delay=0.01)
        assert result is not None
        assert result.downstream_id == "W"
        assert controller.replay_depth() == 0
        assert controller.ack_count == 3

    def test_release_replay_member_by_member(self):
        controller = _controller(_FakeClock(), delivery=self.DELIVERY)
        controller.dispatch_batch([7, 8, 9], context=("a", "b", "c"))
        controller.release_replay(7, EVICT_SHED)
        assert controller.replay_depth() == 1
        assert controller.replay_holds(8)
        controller.release_replay(8, EVICT_SHED)
        controller.release_replay(9, EVICT_SHED)
        assert controller.replay_depth() == 0

    def test_without_delivery_no_retention(self):
        controller = _controller(_FakeClock())
        controller.dispatch_batch([1, 2, 3], context=("a", "b", "c"))
        assert controller.replay_depth() == 0

    def test_batch_of_one_delegates_to_dispatch(self):
        controller = _controller(_FakeClock(), delivery=self.DELIVERY)
        assert controller.dispatch_batch([42], context="a") == "W"
        assert controller.dispatched == 1
        assert controller.replay_holds(42)
        controller.on_ack(42)
        assert controller.replay_depth() == 0


class TestMailboxBatchShedding:
    def test_batch_is_droppable_and_weighted(self):
        mailbox = Mailbox("W")
        batch = messages.batch_message("f", b"frame", [1, 2, 3], 0.0)
        assert mailbox._droppable(batch)
        assert mailbox._tuple_count(batch) == 3
        data = messages.data_message("f", b"p", 1, 0.0)
        assert mailbox._tuple_count(data) == 1
        ack = messages.ack_message(1, 0.0, 0.0)
        assert not mailbox._droppable(ack)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestEndToEndBatching:
    """Full runtime flow: source -> f -> sink with batched frames."""

    ITEMS = 50

    def _graph(self):
        return (GraphBuilder("app")
                .source("src", lambda: IterableSource(
                    [{"x": i} for i in range(self.ITEMS)]))
                .unit("f", lambda: LambdaUnit(lambda v: {"y": v["x"] + 1}))
                .sink("snk", CollectingSink)
                .chain("src", "f", "snk")
                .build())

    def _run(self, batching):
        fabric = InProcFabric()
        graph = self._graph()
        config = PolicyConfig(policy="RR", batching=batching)
        registry = metrics_mod.MetricsRegistry()
        worker_a = WorkerRuntime("A", fabric, graph, policy_config=config,
                                 source_rate=2000.0, registry=registry)
        worker_b = WorkerRuntime("B", fabric, graph, policy_config=config,
                                 registry=registry)
        worker_a.start()
        worker_b.start()
        try:
            fabric.send("M", "A", messages.deploy_message(
                "A", ["src", "snk"], {"src>f": ["f@B"]}))
            fabric.send("M", "B", messages.deploy_message(
                "B", ["f"], {"f>snk": ["snk@A"]}))
            assert wait_until(lambda: worker_a.deployed.is_set()
                              and worker_b.deployed.is_set())
            fabric.send("M", "A", messages.start_message())
            fabric.send("M", "B", messages.start_message())
            sink = worker_a.unit("snk")
            assert wait_until(
                lambda: len(sink.results) >= self.ITEMS, timeout=10.0)
            return worker_a, worker_b, sink, registry
        finally:
            worker_a.stop()
            worker_b.stop()

    def test_all_tuples_arrive_batched(self):
        batching = BatchConfig(max_tuples=8, max_delay=0.2)
        worker_a, worker_b, sink, registry = self._run(batching)
        assert sorted(sink.values("y")) == list(range(1, self.ITEMS + 1))
        assert worker_b.processed_count == self.ITEMS
        histogram = registry.histogram(
            metrics_mod.BATCH_SIZE, buckets=metrics_mod.BATCH_SIZE_BUCKETS,
            edge="src>f")
        assert histogram.count > 0
        # Fewer flushes than tuples proves multi-tuple batches were used.
        assert histogram.count < self.ITEMS
        # ACKs flowed back batched and credited every member.
        dispatcher = worker_a.dispatcher("src")
        assert wait_until(lambda: dispatcher.ack_count >= self.ITEMS - 8)

    def test_batch_size_one_still_works(self):
        _worker_a, worker_b, sink, _registry = self._run(
            BatchConfig(max_tuples=1))
        assert sorted(sink.values("y")) == list(range(1, self.ITEMS + 1))
        assert worker_b.processed_count == self.ITEMS
