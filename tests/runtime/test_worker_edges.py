"""Edge-case tests for worker/master lifecycle paths."""

import time

import pytest

from repro.core.exceptions import DeploymentError, RuntimeStateError
from repro.core.function_unit import (CollectingSink, FunctionUnit,
                                      IterableSource, LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime import messages
from repro.runtime.fabric import InProcFabric
from repro.runtime.master import Master
from repro.runtime.worker import WorkerRuntime


def build_graph(items=0):
    return (GraphBuilder("edges")
            .source("src", lambda: IterableSource(
                [{"x": i} for i in range(items)]))
            .unit("f", lambda: LambdaUnit(lambda v: v))
            .sink("snk", CollectingSink)
            .chain("src", "f", "snk")
            .build())


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestWorkerLifecycle:
    def test_double_start_rejected(self):
        worker = WorkerRuntime("B", InProcFabric(), build_graph())
        worker.start()
        try:
            with pytest.raises(RuntimeStateError):
                worker.start()
        finally:
            worker.stop()

    def test_negative_slowdown_rejected(self):
        with pytest.raises(RuntimeStateError):
            WorkerRuntime("B", InProcFabric(), build_graph(), slowdown=-1.0)

    def test_stop_idempotent(self):
        worker = WorkerRuntime("B", InProcFabric(), build_graph())
        worker.start()
        worker.stop()
        worker.stop()  # no error

    def test_unit_accessor_before_deploy_raises(self):
        worker = WorkerRuntime("B", InProcFabric(), build_graph())
        with pytest.raises(DeploymentError):
            worker.unit("f")
        with pytest.raises(DeploymentError):
            worker.dispatcher("f")

    def test_edge_key_format(self):
        assert WorkerRuntime.edge_key("src", "f") == "src>f"

    def test_bad_factory_rejected_at_activation(self):
        graph = (GraphBuilder("bad")
                 .source("src", lambda: IterableSource([]))
                 .unit("f", lambda: object())  # not a FunctionUnit
                 .sink("snk", CollectingSink)
                 .chain("src", "f", "snk")
                 .build())
        fabric = InProcFabric()
        worker = WorkerRuntime("B", fabric, graph)
        worker.start()
        try:
            fabric.send("X", "B", messages.deploy_message("B", ["f"], {}))
            time.sleep(0.2)
            # The deploy failed inside the loop; the unit never activated
            # and the worker thread survived the exception.
            assert worker.hosted_units() == []
            assert worker._thread.is_alive()
        finally:
            worker.stop()


class TestRedeployment:
    def test_redeploy_removes_stale_units(self):
        fabric = InProcFabric()
        worker = WorkerRuntime("B", fabric, build_graph())
        worker.start()
        try:
            fabric.send("X", "B", messages.deploy_message("B", ["f"], {}))
            assert wait_until(lambda: worker.hosted_units() == ["f"])
            worker.deployed.clear()
            fabric.send("X", "B", messages.deploy_message("B", [], {}))
            assert wait_until(lambda: worker.deployed.is_set())
            assert worker.hosted_units() == []
        finally:
            worker.stop()

    def test_redeploy_is_idempotent_for_existing_units(self):
        fabric = InProcFabric()
        worker = WorkerRuntime("B", fabric, build_graph())
        worker.start()
        try:
            for _ in range(2):
                fabric.send("X", "B", messages.deploy_message("B", ["f"], {}))
            assert wait_until(lambda: worker.hosted_units() == ["f"])
            unit_before = worker.unit("f")
            fabric.send("X", "B", messages.deploy_message("B", ["f"], {}))
            time.sleep(0.2)
            # The same instance survives repeated deploys (state kept).
            assert worker.unit("f") is unit_before
        finally:
            worker.stop()


class TestMasterEdges:
    def test_join_before_deploy_waits(self):
        fabric = InProcFabric()
        master = Master("A", fabric, build_graph())
        master.runtime.start()
        worker = WorkerRuntime("B", fabric, build_graph())
        worker.start()
        try:
            worker.join_master("A")
            assert wait_until(lambda: "B" in master.worker_ids)
            # No deploy yet: the worker hosts nothing.
            time.sleep(0.1)
            assert worker.hosted_units() == []
            master.deploy()
            assert wait_until(lambda: worker.hosted_units() == ["f"])
        finally:
            master.stop()
            worker.stop()
            master.runtime.stop()

    def test_leave_of_unknown_worker_harmless(self):
        master = Master("A", InProcFabric(), build_graph())
        master.handle_leave("ghost")  # no error
        master.stop()

    def test_stop_unreachable_worker_tolerated(self):
        fabric = InProcFabric()
        master = Master("A", fabric, build_graph())
        master.runtime.start()
        worker = WorkerRuntime("B", fabric, build_graph())
        worker.start()
        try:
            worker.join_master("A")
            assert wait_until(lambda: "B" in master.worker_ids)
            master.deploy()
            fabric.unregister("B")  # B's endpoint vanishes
            master.stop()           # must not raise on the dead send
        finally:
            worker.stop()
            master.runtime.stop()
