"""Keyed tuples on the wire: round-trip, parity, unkeyed byte-identity."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import DataTuple
from repro.runtime.serialization import (decode_tuple, encode_tuple,
                                         encode_value)


def _fields_without_key(data):
    """The pre-keyed wire field dict — the format before `key` existed."""
    fields = {"seq": data.seq, "created_at": data.created_at,
              "values": data.values}
    if data.deadline is not None:
        fields["deadline"] = data.deadline
    if data.trace is not None:
        fields["trace"] = data.trace.to_dict()
    if data.delivery_attempt != 1:
        fields["delivery_attempt"] = data.delivery_attempt
    if data.tenant != "":
        fields["tenant"] = data.tenant
    return fields


class TestUnkeyedByteIdentity:
    def test_unkeyed_frame_identical_to_pre_keyed_format(self):
        # A tuple without a key must encode to exactly the bytes the
        # codec produced before the key field existed — mixed-version
        # swarms interoperate on the stateless path.
        for data in (DataTuple(values={"x": 1}, seq=5, created_at=2.5),
                     DataTuple(values={}, seq=0, created_at=0.0),
                     DataTuple(values={"x": 1}, seq=1, created_at=1.0,
                               deadline=9.0, delivery_attempt=3,
                               tenant="t1")):
            assert data.key is None
            assert encode_tuple(data) == encode_value(
                _fields_without_key(data))

    def test_absent_key_never_on_wire(self):
        frame = encode_tuple(DataTuple(values={"x": 1}, seq=5,
                                       created_at=2.5))
        assert b"key" not in frame


class TestKeyedRoundTrip:
    def test_key_round_trips(self):
        data = DataTuple(values={"x": 1}, seq=5, created_at=2.5,
                         key="user-7")
        out = decode_tuple(encode_tuple(data))
        assert out.key == "user-7"
        assert out.seq == 5 and out.values == {"x": 1}

    def test_unkeyed_decodes_to_none(self):
        out = decode_tuple(encode_tuple(
            DataTuple(values={"x": 1}, seq=5, created_at=2.5)))
        assert out.key is None

    def test_fast_path_matches_generic_for_keyed(self):
        # The specialized emitter and the generic dict codec must agree
        # on keyed frames too — the generic path defines the format.
        data = DataTuple(values={"x": 1}, seq=5, created_at=2.5,
                         key="user-7", tenant="t1", delivery_attempt=2)
        fields = _fields_without_key(data)
        fields["key"] = data.key
        assert encode_tuple(data) == encode_value(fields)

    def test_non_canonical_key_type_takes_generic_path(self):
        # A non-str key can only come from in-process misuse; the fast
        # emitter must fall through rather than corrupt the frame.
        data = DataTuple(values={}, seq=1, created_at=1.0, key=b"user-1")
        decoded = decode_tuple(encode_tuple(data))
        assert decoded.key == b"user-1"

    def test_derive_carries_key(self):
        data = DataTuple(values={"x": 1}, seq=5, created_at=2.5,
                         key="user-7")
        assert data.derive({"y": 2}).key == "user-7"

    @given(st.text(max_size=64))
    def test_any_text_key_round_trips(self, key):
        data = DataTuple(values={}, seq=1, created_at=1.0, key=key)
        assert decode_tuple(encode_tuple(data)).key == key
