"""Tests for the runtime peer health monitor."""

import random

import pytest

from repro import metrics as metrics_mod
from repro.core.exceptions import RuntimeStateError
from repro.runtime.health import HealthMonitor


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_monitor(**kwargs):
    clock = FakeClock()
    registry = metrics_mod.MetricsRegistry()
    kwargs.setdefault("timeout", 1.0)
    kwargs.setdefault("max_failures", 3)
    kwargs.setdefault("base_backoff", 0.1)
    kwargs.setdefault("max_backoff", 1.0)
    monitor = HealthMonitor(clock=clock, registry=registry, **kwargs)
    return monitor, clock, registry


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"timeout": -1.0},
        {"max_failures": 0},
        {"base_backoff": -0.1},
        {"base_backoff": 2.0, "max_backoff": 1.0},
        {"jitter": -0.1},
        {"jitter": 1.0},
    ])
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(RuntimeStateError):
            HealthMonitor(**kwargs)


class TestFailureCounting:
    def test_dead_after_max_failures(self):
        monitor, _clock, registry = make_monitor(max_failures=3)
        assert monitor.record_failure("B") is False
        assert monitor.record_failure("B") is False
        assert monitor.record_failure("B") is True
        assert monitor.is_dead("B")
        assert monitor.dead_peers() == ["B"]
        assert registry.value(metrics_mod.MARKED_DEAD_TOTAL,
                              downstream="B") == 1

    def test_success_resets_everything(self):
        monitor, _clock, registry = make_monitor(max_failures=2)
        monitor.record_failure("B")
        monitor.record_failure("B")
        assert monitor.is_dead("B")
        monitor.record_success("B")
        assert not monitor.is_dead("B")
        assert monitor.backoff_for("B") == 0.0
        assert registry.value(metrics_mod.RESURRECTED_TOTAL,
                              downstream="B") == 1

    def test_unknown_peer_is_not_dead(self):
        monitor, _clock, _registry = make_monitor()
        assert not monitor.is_dead("nobody")
        assert monitor.should_attempt("nobody")


class TestBackoff:
    def test_backoff_doubles_and_caps(self):
        monitor, _clock, _registry = make_monitor(base_backoff=0.1,
                                                  max_backoff=0.35,
                                                  jitter=0.0)
        monitor.record_failure("B")
        assert monitor.backoff_for("B") == pytest.approx(0.1)
        monitor.record_failure("B")
        assert monitor.backoff_for("B") == pytest.approx(0.2)
        monitor.record_failure("B")
        assert monitor.backoff_for("B") == pytest.approx(0.35)  # capped
        monitor.record_failure("B")
        assert monitor.backoff_for("B") == pytest.approx(0.35)

    def test_jitter_stays_within_bounds(self):
        monitor, _clock, _registry = make_monitor(
            base_backoff=0.4, max_backoff=0.4, jitter=0.25,
            rng=random.Random(7))
        monitor.record_failure("B")
        samples = [monitor.backoff_for("B") for _ in range(200)]
        assert all(0.3 <= value <= 0.5 for value in samples)
        # Jitter actually varies the window (not a constant scaling).
        assert max(samples) - min(samples) > 0.01

    def test_jitter_is_deterministic_under_a_seeded_rng(self):
        samples = []
        for _ in range(2):
            monitor, _clock, _registry = make_monitor(
                base_backoff=0.4, jitter=0.25, rng=random.Random(13))
            monitor.record_failure("B")
            samples.append([monitor.backoff_for("B") for _ in range(20)])
        assert samples[0] == samples[1]

    def test_zero_jitter_returns_the_nominal_window(self):
        monitor, _clock, _registry = make_monitor(base_backoff=0.1,
                                                  jitter=0.0)
        monitor.record_failure("B")
        assert monitor.backoff_for("B") == pytest.approx(0.1)

    def test_healthy_peer_has_no_jittered_backoff(self):
        monitor, _clock, _registry = make_monitor(jitter=0.5)
        assert monitor.backoff_for("B") == 0.0

    def test_should_attempt_gates_on_backoff_window(self):
        monitor, clock, _registry = make_monitor(base_backoff=0.5)
        monitor.record_failure("B")
        assert not monitor.should_attempt("B")
        clock.advance(0.49)
        assert not monitor.should_attempt("B")
        clock.advance(0.02)
        assert monitor.should_attempt("B")


class TestTimeouts:
    def test_check_timeouts_marks_aged_peers(self):
        monitor, clock, registry = make_monitor(timeout=1.0)
        monitor.record_heartbeat("B")
        monitor.record_heartbeat("C")
        clock.advance(0.5)
        monitor.record_heartbeat("C")  # only C stays fresh
        clock.advance(0.7)
        assert monitor.check_timeouts() == ["B"]
        assert monitor.is_dead("B")
        assert not monitor.is_dead("C")
        assert registry.value(metrics_mod.HEARTBEAT_MISS_TOTAL,
                              downstream="B") == 1
        # Already dead: not reported twice.
        assert monitor.check_timeouts() == []

    def test_timeout_zero_disables_sweep(self):
        monitor, clock, _registry = make_monitor(timeout=0.0)
        monitor.record_heartbeat("B")
        clock.advance(1000.0)
        assert monitor.check_timeouts() == []

    def test_ack_age(self):
        monitor, clock, _registry = make_monitor()
        assert monitor.ack_age("B") is None
        monitor.record_ack("B")
        clock.advance(0.4)
        assert monitor.ack_age("B") == pytest.approx(0.4)

    def test_forget(self):
        monitor, _clock, _registry = make_monitor(max_failures=1)
        monitor.record_failure("B")
        monitor.forget("B")
        assert not monitor.is_dead("B")
        assert monitor.known_peers() == []

    def test_snapshot_is_a_copy(self):
        monitor, _clock, _registry = make_monitor()
        monitor.record_failure("B")
        snapshot = monitor.snapshot()
        snapshot["B"].consecutive_failures = 99
        assert monitor.snapshot()["B"].consecutive_failures == 1

    def test_silent_from_birth_peer_is_evicted(self):
        # Regression: a peer registered without EVER producing a
        # positive signal (no heartbeat, no ACK, no success) used to
        # survive check_timeouts forever, because the sweep keyed off
        # last_success alone.  The timeout clock must start at first
        # sight.
        monitor, clock, registry = make_monitor(timeout=1.0, max_failures=5)
        monitor.record_failure("B")  # seen, but never a positive signal
        clock.advance(1.1)
        assert monitor.check_timeouts() == ["B"]
        assert monitor.is_dead("B")
        assert registry.value(metrics_mod.HEARTBEAT_MISS_TOTAL,
                              downstream="B") == 1

    def test_silent_peer_not_evicted_before_timeout(self):
        monitor, clock, _registry = make_monitor(timeout=1.0, max_failures=5)
        monitor.record_failure("B")
        clock.advance(0.9)
        assert monitor.check_timeouts() == []
        assert not monitor.is_dead("B")
