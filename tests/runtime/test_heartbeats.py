"""Tests for heartbeat-based failure detection.

The paper's master "constantly listens for incoming connections" and
upstreams detect broken links; the runtime implements the complementary
liveness mechanism — workers beacon heartbeats, the master evicts silent
ones and refreshes every routing table.
"""

import time

import pytest

from repro.core.exceptions import DeploymentError
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime.fabric import InProcFabric
from repro.runtime.master import Master
from repro.runtime.worker import WorkerRuntime


def build_graph():
    return (GraphBuilder("hb")
            .source("src", lambda: IterableSource([]))
            .unit("f", lambda: LambdaUnit(lambda v: v))
            .sink("snk", CollectingSink)
            .chain("src", "f", "snk")
            .build())


def wait_until(predicate, timeout=8.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestHeartbeats:
    def test_invalid_intervals_rejected(self):
        fabric = InProcFabric()
        with pytest.raises(Exception):
            WorkerRuntime("B", fabric, build_graph(), heartbeat_interval=-1.0)
        with pytest.raises(DeploymentError):
            Master("A", InProcFabric(), build_graph(),
                   heartbeat_timeout=-1.0)

    def test_worker_emits_heartbeats(self):
        fabric = InProcFabric()
        mailbox = fabric.register("A")
        worker = WorkerRuntime("B", fabric, build_graph(),
                               heartbeat_interval=0.05,
                               heartbeat_target="A")
        worker.start()
        try:
            seen = []

            def got_heartbeat():
                try:
                    sender, message = mailbox.get(timeout=0.01)
                except TimeoutError:
                    return False
                from repro.runtime import messages
                if message.kind == messages.HEARTBEAT:
                    seen.append(sender)
                return len(seen) >= 2

            assert wait_until(got_heartbeat)
            assert all(sender == "B" for sender in seen)
        finally:
            worker.stop()

    def test_silent_worker_evicted(self):
        fabric = InProcFabric()
        graph = build_graph()
        master = Master("A", fabric, graph, heartbeat_timeout=0.3)
        master.runtime.start()
        alive = WorkerRuntime("B", fabric, graph, heartbeat_interval=0.05,
                              heartbeat_target="A")
        silent = WorkerRuntime("C", fabric, graph)  # no heartbeats
        try:
            for worker in (alive, silent):
                worker.start()
                worker.join_master("A")
            assert wait_until(lambda: {"B", "C"} <= set(master.worker_ids))
            master.deploy()
            # C never beacons: the failure detector must evict it, and B
            # must survive.
            assert wait_until(lambda: "C" not in master.worker_ids,
                              timeout=5.0)
            assert "B" in master.worker_ids
            dispatcher = master.runtime.dispatcher("src")
            assert wait_until(
                lambda: dispatcher.downstream_instances() == ["f@B"])
        finally:
            master.stop()
            alive.stop()
            silent.stop()
            master.runtime.stop()

    def test_detector_disabled_by_default(self):
        master = Master("A", InProcFabric(), build_graph())
        assert master._detector is None
        master.stop()
