"""Non-chain graph shapes on the threaded runtime.

The paper's API supports units with "multiple upstream or downstream
units" (Sec. IV-A).  A tuple emitted by a unit goes to EVERY downstream
logical unit (one replica each, chosen by that edge's policy); a unit
with several upstreams receives the union of their outputs.
"""

import pytest

from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime.app_runner import SwingRuntime

ITEMS = 12


def fan_out_graph():
    """source -> {double, square} -> sink (a diamond)."""
    return (GraphBuilder("diamond")
            .source("src", lambda: IterableSource(
                [{"x": i} for i in range(ITEMS)]))
            .unit("double", lambda: LambdaUnit(
                lambda v: {"value": v["x"] * 2, "kind": "double"}))
            .unit("square", lambda: LambdaUnit(
                lambda v: {"value": v["x"] ** 2, "kind": "square"}))
            .sink("snk", CollectingSink)
            .connect("src", "double").connect("src", "square")
            .connect("double", "snk").connect("square", "snk")
            .build())


class TestDiamondGraph:
    @pytest.fixture(scope="class")
    def results(self):
        runtime = SwingRuntime(fan_out_graph(), worker_ids=["B", "C"],
                               policy="RR", source_rate=150.0)
        return runtime.run(until_idle=0.6, timeout=60.0, reorder=False)

    def test_every_tuple_reaches_both_branches(self, results):
        # Each source tuple produces one result per branch: 2N total.
        assert len(results) == 2 * ITEMS

    def test_branch_outputs_correct(self, results):
        doubles = sorted(data.get_value("value") for data in results
                         if data.get_value("kind") == "double")
        squares = sorted(data.get_value("value") for data in results
                         if data.get_value("kind") == "square")
        assert doubles == [i * 2 for i in range(ITEMS)]
        assert squares == sorted(i ** 2 for i in range(ITEMS))

    def test_each_seq_arrives_exactly_twice(self, results):
        from collections import Counter
        counts = Counter(data.seq for data in results)
        assert all(count == 2 for count in counts.values())


class TestLongerChain:
    def test_four_stage_chain(self):
        graph = (GraphBuilder("deep")
                 .source("src", lambda: IterableSource(
                     [{"x": i} for i in range(8)]))
                 .unit("a", lambda: LambdaUnit(lambda v: {"x": v["x"] + 1}))
                 .unit("b", lambda: LambdaUnit(lambda v: {"x": v["x"] * 10}))
                 .unit("c", lambda: LambdaUnit(lambda v: {"x": v["x"] - 5}))
                 .sink("snk", CollectingSink)
                 .chain("src", "a", "b", "c", "snk")
                 .build())
        runtime = SwingRuntime(graph, worker_ids=["B", "C", "D"],
                               policy="LRS", source_rate=150.0)
        results = runtime.run(until_idle=0.6, timeout=60.0)
        values = sorted(data.get_value("x") for data in results)
        assert values == sorted((i + 1) * 10 - 5 for i in range(8))
