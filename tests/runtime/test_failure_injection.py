"""Failure-injection tests for the threaded runtime.

The paper's Background Service keeps Swing alive in hostile conditions;
these tests inject faults — poison tuples, crashing units, abrupt worker
death mid-stream — and assert the rest of the swarm keeps serving.
"""

import time

import pytest

from repro.core.function_unit import (CollectingSink, FunctionUnit,
                                      IterableSource, LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.core.tuples import DataTuple
from repro.runtime import messages
from repro.runtime.fabric import InProcFabric
from repro.runtime.master import Master
from repro.runtime.worker import WorkerRuntime


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class FlakyUnit(FunctionUnit):
    """Crashes on every tuple whose value is marked poisonous."""

    def process_data(self, data: DataTuple) -> None:
        if data.get_value("x") == "poison":
            raise ValueError("boom")
        self.send(data.derive({"y": data.get_value("x")}))


def flaky_graph(payloads):
    return (GraphBuilder("flaky")
            .source("src", lambda: IterableSource(payloads))
            .unit("f", FlakyUnit)
            .sink("snk", CollectingSink)
            .chain("src", "f", "snk")
            .build())


def start_swarm(graph, worker_ids=("B",), policy="RR", source_rate=200.0):
    fabric = InProcFabric()
    master = Master("A", fabric, graph, policy=policy,
                    source_rate=source_rate, control_interval=0.1)
    workers = {wid: WorkerRuntime(wid, fabric, graph, policy=policy)
               for wid in worker_ids}
    master.runtime.start()
    for worker in workers.values():
        worker.start()
        worker.join_master("A")
    wait_until(lambda: set(worker_ids) <= set(master.worker_ids))
    master.deploy()
    wait_until(lambda: all(w.deployed.is_set() for w in workers.values()))
    return fabric, master, workers


def stop_swarm(master, workers):
    master.stop()
    for worker in workers.values():
        worker.stop()
    master.runtime.stop()


class TestPoisonTuples:
    def test_crashing_tuple_does_not_kill_worker(self):
        payloads = [{"x": 1}, {"x": "poison"}, {"x": 3}]
        _f, master, workers = start_swarm(flaky_graph(payloads))
        try:
            master.start()
            sink = master.runtime.unit("snk")
            assert wait_until(lambda: len(sink.results) == 2)
            values = sorted(data.get_value("y") for data in sink.results)
            assert values == [1, 3]
            # The worker survived and keeps counting work.
            assert workers["B"].processed_count >= 2
        finally:
            stop_swarm(master, workers)

    def test_malformed_control_message_ignored(self):
        _f, master, workers = start_swarm(flaky_graph([{"x": 7}]))
        try:
            fabric = master.fabric
            # Garbage DATA frame for an unknown unit: must be dropped.
            fabric.send("A", "B", messages.Message(
                messages.DATA, {"unit": "ghost", "tuple": b"\xff",
                                "seq": 0, "sent_at": 0.0}))
            master.start()
            sink = master.runtime.unit("snk")
            assert wait_until(lambda: len(sink.results) == 1)
        finally:
            stop_swarm(master, workers)


class TestWorkerDeath:
    def test_stream_survives_worker_dying_mid_run(self):
        items = 60
        payloads = [{"x": i} for i in range(items)]
        graph = (GraphBuilder("death")
                 .source("src", lambda: IterableSource(payloads))
                 .unit("f", lambda: LambdaUnit(lambda v: {"y": v["x"]}))
                 .sink("snk", CollectingSink)
                 .chain("src", "f", "snk")
                 .build())
        fabric, master, workers = start_swarm(graph, worker_ids=("B", "C"),
                                              policy="LRS", source_rate=80.0)
        try:
            master.start()
            sink = master.runtime.unit("snk")
            assert wait_until(lambda: len(sink.results) >= 10)
            # C dies abruptly: its endpoint vanishes from the fabric.
            workers["C"].stop()
            fabric.unregister("C")
            master.handle_leave("C")
            # The remaining worker finishes the stream (some in-flight
            # tuples on C may be lost, like the paper's 13 frames).
            assert wait_until(
                lambda: len(sink.results) >= items - 15, timeout=20.0)
            dispatcher = master.runtime.dispatcher("src")
            assert dispatcher.downstream_instances() == ["f@B"]
        finally:
            stop_swarm(master, workers)

    def test_send_failure_triggers_immediate_reroute(self):
        # Even before the master notices, the dispatcher reroutes a tuple
        # whose send raises (paper Sec. IV-C link-break handling).
        from repro.runtime.dispatcher import UpstreamDispatcher
        sent = []

        def send(worker_id, message):
            if worker_id == "dead":
                raise ConnectionError("gone")
            sent.append(worker_id)

        dispatcher = UpstreamDispatcher("src", send=send, policy="RR")
        dispatcher.set_downstreams(["f@dead", "f@alive"])
        for seq in range(4):
            dispatcher.dispatch(DataTuple(values={}, seq=seq))
        assert sent and all(worker == "alive" for worker in sent)
