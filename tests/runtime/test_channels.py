"""Tests for in-process and TCP channels."""

import threading

import pytest

from repro.core.exceptions import SerializationError
from repro.runtime.channels import (ChannelClosed, InProcChannel, TcpChannel,
                                    TcpListener)


class TestInProcChannel:
    def test_bidirectional_pair(self):
        a, b = InProcChannel.pair()
        a.send(b"ping")
        assert b.recv(timeout=1.0) == b"ping"
        b.send(b"pong")
        assert a.recv(timeout=1.0) == b"pong"

    def test_fifo_order(self):
        a, b = InProcChannel.pair()
        for index in range(5):
            a.send(bytes([index]))
        received = [b.recv(timeout=1.0) for _ in range(5)]
        assert received == [bytes([index]) for index in range(5)]

    def test_recv_timeout(self):
        a, b = InProcChannel.pair()
        with pytest.raises(TimeoutError):
            b.recv(timeout=0.01)

    def test_close_propagates_to_peer(self):
        a, b = InProcChannel.pair()
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv(timeout=1.0)
        assert b.closed

    def test_send_on_closed_raises(self):
        a, _b = InProcChannel.pair()
        a.close()
        with pytest.raises(ChannelClosed):
            a.send(b"late")


class TestTcpChannel:
    def _connected_pair(self):
        listener = TcpListener()
        results = {}

        def _accept():
            results["server"] = listener.accept(timeout=5.0)

        thread = threading.Thread(target=_accept, daemon=True)
        thread.start()
        client = TcpChannel.connect(*listener.address)
        thread.join(timeout=5.0)
        listener.close()
        return client, results["server"]

    def test_framed_roundtrip(self):
        client, server = self._connected_pair()
        try:
            client.send(b"hello")
            assert server.recv(timeout=2.0) == b"hello"
            server.send(b"world" * 1000)
            assert client.recv(timeout=2.0) == b"world" * 1000
        finally:
            client.close()
            server.close()

    def test_empty_frame(self):
        client, server = self._connected_pair()
        try:
            client.send(b"")
            assert server.recv(timeout=2.0) == b""
        finally:
            client.close()
            server.close()

    def test_binary_safety(self):
        client, server = self._connected_pair()
        try:
            payload = bytes(range(256)) * 16
            client.send(payload)
            assert server.recv(timeout=2.0) == payload
        finally:
            client.close()
            server.close()

    def test_recv_timeout(self):
        client, server = self._connected_pair()
        try:
            with pytest.raises(TimeoutError):
                server.recv(timeout=0.05)
        finally:
            client.close()
            server.close()

    def test_peer_close_detected(self):
        client, server = self._connected_pair()
        client.close()
        with pytest.raises(ChannelClosed):
            server.recv(timeout=2.0)
        server.close()

    def test_send_after_close_raises(self):
        client, server = self._connected_pair()
        client.close()
        with pytest.raises(ChannelClosed):
            client.send(b"late")
        server.close()

    def test_listener_accept_timeout(self):
        listener = TcpListener()
        try:
            with pytest.raises(TimeoutError):
                listener.accept(timeout=0.05)
        finally:
            listener.close()

    def test_oversized_frame_rejected_by_sender(self):
        client, server = self._connected_pair()
        try:
            from repro.runtime import channels
            huge = b"x" * (channels.MAX_FRAME_BYTES + 1)
            with pytest.raises(SerializationError):
                client.send(huge)
        finally:
            client.close()
            server.close()
