"""Lint-style guard: no wall-clock reads in latency/span arithmetic.

Every timestamp that feeds the LRS controller, the tracer, or the delay
decomposition must come from an injected Clock port (``time.monotonic``
on the runtime, ``sim.now`` on the engine).  A stray ``time.time()``
silently corrupts span durations when the system clock steps, so this
test greps the source tree and fails on any wall-clock call outside the
(currently empty) allowlist.
"""

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: wall-clock calls that must never appear in src/
FORBIDDEN = re.compile(
    r"time\.time\(|datetime\.now\(|datetime\.utcnow\(|time\.clock\(")

#: repo-relative paths allowed to read the wall clock (none today);
#: add entries only for user-facing timestamps, never span arithmetic.
ALLOWED = frozenset()


def test_no_wall_clock_calls_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if relative in ALLOWED:
            continue
        text = path.read_text(encoding="utf-8")
        for number, line in enumerate(text.splitlines(), start=1):
            if FORBIDDEN.search(line):
                offenders.append("%s:%d: %s" % (relative, number,
                                                line.strip()))
    assert not offenders, (
        "wall-clock call(s) found; use the injected Clock port "
        "(time.monotonic / sim.now) instead:\n" + "\n".join(offenders))


def test_src_tree_is_where_we_think_it_is():
    # Guard the guard: if the layout moves, the grep must not silently
    # pass over an empty directory.
    assert (SRC / "repro" / "trace" / "spans.py").is_file()
