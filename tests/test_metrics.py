"""Tests for the labelled counter registry."""

import threading

from repro import metrics as metrics_mod
from repro.metrics import Counter, MetricsRegistry


class TestCounter:
    def test_identity_includes_sorted_labels(self):
        counter = Counter("x_total", {"b": "2", "a": "1"})
        assert counter.identity() == "x_total{a=1,b=2}"

    def test_identity_without_labels(self):
        assert Counter("x_total", {}).identity() == "x_total"

    def test_inc(self):
        counter = Counter("x_total", {})
        counter.inc()
        counter.inc(2)
        assert counter.value == 3


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", downstream="B")
        second = registry.counter("x_total", downstream="B")
        assert first is second

    def test_distinct_labels_distinct_counters(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B")
        registry.increment("x_total", downstream="C")
        registry.increment("x_total", downstream="C")
        assert registry.value("x_total", downstream="B") == 1
        assert registry.value("x_total", downstream="C") == 2

    def test_value_of_unknown_counter_is_zero(self):
        assert MetricsRegistry().value("nope_total", downstream="B") == 0

    def test_values_by_label(self):
        registry = MetricsRegistry()
        registry.increment("lost_total", downstream="B")
        registry.increment("lost_total", downstream="B")
        registry.increment("lost_total", downstream="G")
        registry.increment("other_total", downstream="Z")
        assert registry.values_by_label("lost_total", "downstream") \
            == {"B": 2, "G": 1}

    def test_render_and_reset(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B")
        rendered = registry.render()
        assert "x_total{downstream=B} 1" in rendered
        registry.reset()
        assert registry.render() == ""

    def test_render_filter(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B")
        registry.increment("y_total", downstream="B")
        rendered = registry.render(only=["y_total"])
        assert "y_total" in rendered
        assert "x_total" not in rendered

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B", reason="r")
        assert registry.snapshot() == {"x_total{downstream=B,reason=r}": 1}

    def test_thread_safety(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.increment("x_total", downstream="B")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("x_total", downstream="B") == 8000

    def test_module_constants_are_distinct(self):
        names = [metrics_mod.SENT_TOTAL, metrics_mod.ACKED_TOTAL,
                 metrics_mod.LOST_TOTAL, metrics_mod.RETRIED_TOTAL,
                 metrics_mod.REROUTED_TOTAL, metrics_mod.MARKED_DEAD_TOTAL,
                 metrics_mod.RESURRECTED_TOTAL, metrics_mod.DROPPED_TOTAL,
                 metrics_mod.HEARTBEAT_MISS_TOTAL]
        assert len(set(names)) == len(names)

    def test_global_registry_exists(self):
        assert isinstance(metrics_mod.REGISTRY, MetricsRegistry)
