"""Tests for the labelled counter registry."""

import threading

import pytest

from repro import metrics as metrics_mod
from repro.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_identity_includes_sorted_labels(self):
        counter = Counter("x_total", {"b": "2", "a": "1"})
        assert counter.identity() == "x_total{a=1,b=2}"

    def test_identity_without_labels(self):
        assert Counter("x_total", {}).identity() == "x_total"

    def test_inc(self):
        counter = Counter("x_total", {})
        counter.inc()
        counter.inc(2)
        assert counter.value == 3


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", downstream="B")
        second = registry.counter("x_total", downstream="B")
        assert first is second

    def test_distinct_labels_distinct_counters(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B")
        registry.increment("x_total", downstream="C")
        registry.increment("x_total", downstream="C")
        assert registry.value("x_total", downstream="B") == 1
        assert registry.value("x_total", downstream="C") == 2

    def test_value_of_unknown_counter_is_zero(self):
        assert MetricsRegistry().value("nope_total", downstream="B") == 0

    def test_values_by_label(self):
        registry = MetricsRegistry()
        registry.increment("lost_total", downstream="B")
        registry.increment("lost_total", downstream="B")
        registry.increment("lost_total", downstream="G")
        registry.increment("other_total", downstream="Z")
        assert registry.values_by_label("lost_total", "downstream") \
            == {"B": 2, "G": 1}

    def test_render_and_reset(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B")
        rendered = registry.render()
        assert "x_total{downstream=B} 1" in rendered
        registry.reset()
        assert registry.render() == ""

    def test_render_filter(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B")
        registry.increment("y_total", downstream="B")
        rendered = registry.render(only=["y_total"])
        assert "y_total" in rendered
        assert "x_total" not in rendered

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.increment("x_total", downstream="B", reason="r")
        assert registry.snapshot() == {"x_total{downstream=B,reason=r}": 1}

    def test_thread_safety(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.increment("x_total", downstream="B")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("x_total", downstream="B") == 8000

    def test_module_constants_are_distinct(self):
        names = [metrics_mod.SENT_TOTAL, metrics_mod.ACKED_TOTAL,
                 metrics_mod.LOST_TOTAL, metrics_mod.RETRIED_TOTAL,
                 metrics_mod.REROUTED_TOTAL, metrics_mod.MARKED_DEAD_TOTAL,
                 metrics_mod.RESURRECTED_TOTAL, metrics_mod.DROPPED_TOTAL,
                 metrics_mod.HEARTBEAT_MISS_TOTAL]
        assert len(set(names)) == len(names)

    def test_global_registry_exists(self):
        assert isinstance(metrics_mod.REGISTRY, MetricsRegistry)


class TestHistogram:
    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("h", {}, buckets=(0.5, 0.1))
        with pytest.raises(ValueError):
            Histogram("h", {}, buckets=())

    def test_observe_accumulates(self):
        histogram = Histogram("h", {})
        for value in (0.002, 0.02, 0.2):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.222)
        assert histogram.mean == pytest.approx(0.074)

    def test_negative_observations_clamped(self):
        histogram = Histogram("h", {})
        histogram.observe(-5.0)
        assert histogram.count == 1
        assert histogram.total == 0.0

    def test_quantiles_land_in_the_right_bucket(self):
        histogram = Histogram("h", {}, buckets=(0.1, 1.0, 10.0))
        for _ in range(90):
            histogram.observe(0.05)
        for _ in range(10):
            histogram.observe(5.0)
        assert histogram.quantile(0.5) <= 0.1
        assert 1.0 <= histogram.quantile(0.99) <= 10.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h", {}).quantile(0.95) == 0.0

    def test_bucket_counts_keys(self):
        histogram = Histogram("h", {}, buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(50.0)
        counts = histogram.bucket_counts()
        assert counts == {"0.1": 1, "1": 0, "+Inf": 1}

    def test_to_dict_shape(self):
        histogram = Histogram("h", {"kind": "process"})
        histogram.observe(0.3)
        view = histogram.to_dict()
        assert set(view) == {"count", "sum", "mean", "p50", "p95", "p99",
                             "buckets"}
        assert view["count"] == 1

    def test_identity_includes_labels(self):
        histogram = Histogram("h", {"kind": "transmit"})
        assert histogram.identity() == "h{kind=transmit}"


class TestRegistryHistograms:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        first = registry.histogram("lat", kind="process")
        second = registry.histogram("lat", kind="process")
        other = registry.histogram("lat", kind="transmit")
        assert first is second
        assert first is not other

    def test_observe_helper(self):
        registry = MetricsRegistry()
        registry.observe_histogram("lat", 0.25, kind="process")
        assert registry.histogram("lat", kind="process").count == 1

    def test_render_includes_histograms(self):
        registry = MetricsRegistry()
        registry.observe_histogram("lat", 0.25, kind="process")
        rendered = registry.render()
        assert "lat{kind=process} count=1" in rendered

    def test_to_dict_sections(self):
        registry = MetricsRegistry()
        registry.increment("c_total")
        registry.set_gauge("depth", 4, queue="ingress:B")
        registry.observe_histogram("lat", 0.25)
        view = registry.to_dict()
        assert view["counters"] == {"c_total": 1}
        assert view["gauges"] == {"depth{queue=ingress:B}": 4}
        assert view["histograms"]["lat"]["count"] == 1

    def test_reset_clears_histograms(self):
        registry = MetricsRegistry()
        registry.observe_histogram("lat", 0.25)
        registry.reset()
        assert registry.histograms() == []

    def test_histogram_constants_exported(self):
        assert metrics_mod.ACK_RTT_SECONDS != metrics_mod.SPAN_SECONDS
        assert metrics_mod.DEFAULT_BUCKETS == tuple(
            sorted(metrics_mod.DEFAULT_BUCKETS))
