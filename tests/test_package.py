"""Package-level smoke tests: imports, exports and version."""

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.policies",
    "repro.core.policies.extensions",
    "repro.runtime",
    "repro.simulation",
    "repro.simulation.pipeline",
    "repro.simulation.replication",
    "repro.apps.face",
    "repro.apps.translate",
    "repro.profiles",
    "repro.planner",
    "repro.tools",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    def test_version(self):
        import repro
        assert repro.__version__ == "1.0.0"

    def test_core_exports_resolve(self):
        import repro.core as core
        for name in core.__all__:
            assert getattr(core, name) is not None, name

    def test_simulation_exports_resolve(self):
        import repro.simulation as simulation
        for name in simulation.__all__:
            assert getattr(simulation, name) is not None, name

    def test_runtime_exports_resolve(self):
        import repro.runtime as runtime
        for name in runtime.__all__:
            assert getattr(runtime, name) is not None, name

    def test_app_exports_resolve(self):
        from repro.apps import face, translate
        for module in (face, translate):
            for name in module.__all__:
                assert getattr(module, name) is not None, name
