"""Tests for the presentation helpers."""

import pytest

from repro.core.exceptions import SwingError
from repro.tools import (format_latency, format_rate, format_table,
                         histogram, sparkline)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotonic_intensity(self):
        line = sparkline([0.0, 5.0, 10.0], peak=10.0)
        assert line[0] == " "
        assert line[-1] == "@"

    def test_all_zero(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_values_above_peak_clamped(self):
        line = sparkline([100.0], peak=10.0)
        assert line == "@"


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table(["a", "b"], [(1, 2), (3, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "a" in lines[0] and "b" in lines[0]
        assert "3" in lines[3]

    def test_empty_rows(self):
        text = format_table(["only"], [])
        assert "only" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(SwingError):
            format_table(["a", "b"], [(1,)])

    def test_wide_cells_extend_column(self):
        text = format_table(["h"], [("a-very-long-cell",)])
        assert "a-very-long-cell" in text


class TestFormatters:
    def test_format_rate(self):
        assert format_rate(23.96) == "24.0 FPS"

    def test_format_latency_ms(self):
        assert format_latency(0.25) == "250 ms"

    def test_format_latency_seconds(self):
        assert format_latency(2.5) == "2.50 s"


class TestHistogram:
    def test_bin_count(self):
        lines = histogram([1.0, 2.0, 3.0], bins=5)
        assert len(lines) == 5

    def test_empty(self):
        assert histogram([]) == ["(no samples)"]

    def test_counts_sum_to_samples(self):
        values = [0.1, 0.2, 0.2, 0.9]
        lines = histogram(values, bins=4)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == len(values)

    def test_invalid_bins(self):
        with pytest.raises(SwingError):
            histogram([1.0], bins=0)
