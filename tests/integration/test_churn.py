"""Churn resilience: at-least-once replay, dedup, drain, and parity.

The delivery-semantics guarantee matrix under membership churn:

- **at-least-once × crash**: every tuple created well before the end of
  the run reaches the sink exactly once (replay redelivers, the sink
  dedup window absorbs duplicates) — zero end-to-end loss, zero counted
  drops.
- **best-effort × crash**: the same seeded churn trace loses tuples,
  and every loss is *counted* (a drop reason), exactly as the seed
  behaved — the new machinery stays out of the way.
- **graceful leave**: the LEAVING drain protocol loses nothing even
  with redelivery disabled, and the drain duration is observable.
- **bounds**: the replay buffer never exceeds its cap and every
  eviction is counted — no silent loss channel.

Plus the substrate-parity contract: a seeded churn trace replayed at
the controller level through the threaded runtime's dispatcher and the
engine adapter produces identical redelivery decisions and counters.
"""

import heapq
import time

import pytest

from repro import metrics as metrics_mod
from repro.core.controller import PolicyConfig
from repro.core.delivery import (AT_LEAST_ONCE, CHURN_LEAVE, CHURN_REJOIN,
                                 ChurnEvent, ChurnSchedule, DeliveryConfig)
from repro.core.function_unit import CollectingSink, IterableSource, LambdaUnit
from repro.core.graph import GraphBuilder
from repro.core.tuples import DataTuple
from repro.runtime.app_runner import SwingRuntime
from repro.runtime.chaos import ChurnHarness
from repro.runtime.dispatcher import UpstreamDispatcher
from repro.simulation import scenarios
from repro.simulation.control import engine_controller
from repro.simulation.engine import Simulator
from repro.simulation.swarm import run_swarm

from tests.integration.waiting import wait_quiescent, wait_until

SEED = 7
DURATION = 40.0
SETTLE = 10.0
#: judge loss only for frames old enough that redelivery had time to land
HORIZON = DURATION - SETTLE / 2.0


@pytest.fixture(scope="module")
def at_least_once():
    return run_swarm(scenarios.churn(seed=SEED, duration=DURATION,
                                     settle=SETTLE))


@pytest.fixture(scope="module")
def best_effort():
    return run_swarm(scenarios.churn(seed=SEED, duration=DURATION,
                                     settle=SETTLE, at_least_once=False))


class TestAtLeastOnceSoak:
    """scenarios.churn seed 7: one graceful leave, one kill, two rejoins."""

    def test_schedule_mixes_kill_and_leave(self, at_least_once):
        actions = [event.action for event in at_least_once.config.churn]
        assert "kill" in actions and "leave" in actions

    def test_zero_tuple_loss(self, at_least_once):
        assert at_least_once.frames_lost == 0
        assert at_least_once.end_to_end_losses(HORIZON) == []

    def test_crash_recovered_by_redelivery(self, at_least_once):
        # The killed worker held un-ACKed frames; they were replayed to
        # survivors rather than lost.
        assert at_least_once.redelivered > 0

    def test_sink_never_double_counts(self, at_least_once):
        # Dedup absorbed whatever duplicates redelivery produced; the
        # throughput the sink reports counts each seq at most once.
        frames = at_least_once.metrics.frames
        arrived = [seq for seq, record in frames.items()
                   if record.sink_arrived_at is not None]
        assert len(arrived) == len(set(arrived))
        assert at_least_once.deduped >= 0  # counted, not silently eaten

    def test_graceful_drain_observed(self, at_least_once):
        leavers = {event.device_id for event in at_least_once.config.churn
                   if event.action == "leave"}
        assert leavers  # schedule degenerating would void this test
        for device_id in leavers:
            assert device_id in at_least_once.drain_seconds
            assert at_least_once.drain_seconds[device_id] >= 0.0

    def test_replay_buffer_within_cap(self, at_least_once):
        capacity = at_least_once.config.delivery.replay_capacity
        assert at_least_once.replay_depth_end <= capacity


class TestBestEffortUnchanged:
    """Same seeded trace without the tentpole: seed loss accounting."""

    def test_churn_loses_tuples_and_counts_them(self, best_effort):
        assert best_effort.frames_lost > 0
        # Every loss carries a drop reason; nothing vanished silently.
        assert best_effort.end_to_end_losses(HORIZON) == []

    def test_delivery_machinery_stays_cold(self, best_effort):
        assert best_effort.redelivered == 0
        assert best_effort.deduped == 0
        assert best_effort.replay_depth_end == 0
        assert best_effort.replay_evicted_by_reason == {}

    def test_at_least_once_recovers_what_best_effort_loses(
            self, at_least_once, best_effort):
        # The whole point of the guarantee matrix in one assertion: the
        # identical churn trace flips from lossy to lossless.
        assert best_effort.frames_lost > 0
        assert at_least_once.frames_lost == 0


class TestGracefulDrainOnly:
    def test_drain_alone_loses_nothing_without_redelivery(self):
        # Satellite: graceful leave must be lossless even in best-effort
        # mode — the drain protocol, not replay, carries the guarantee.
        config = scenarios.churn(seed=SEED, duration=DURATION, settle=SETTLE,
                                 at_least_once=False)
        config.churn = ChurnSchedule(events=(
            ChurnEvent(12.0, CHURN_LEAVE, "G"),
            ChurnEvent(20.0, CHURN_REJOIN, "G"),
        ))
        result = run_swarm(config)
        assert result.frames_lost == 0
        assert result.end_to_end_losses(HORIZON) == []
        assert result.drain_seconds.get("G", -1.0) >= 0.0
        assert result.registry.histogram(metrics_mod.DRAIN_SECONDS,
                                         device="G").count >= 1


class TestReplayBounded:
    def test_tiny_buffer_evicts_loudly_never_silently(self):
        config = scenarios.churn(seed=SEED, duration=DURATION, settle=SETTLE,
                                 replay_capacity=4)
        result = run_swarm(config)
        assert result.replay_depth_end <= 4
        evicted = sum(result.replay_evicted_by_reason.values())
        # A frame can only go missing end-to-end by being evicted from
        # the replay buffer (counted) or still being retained at cutoff.
        losses = result.end_to_end_losses(HORIZON)
        assert len(losses) <= evicted + result.replay_depth_end


# ---------------------------------------------------------------------------
# Substrate parity: one churn trace, controller-level, both adapters.
# ---------------------------------------------------------------------------

DOWNSTREAMS = ("det@B", "det@C", "det@D")
ACK_DELAY = {"det@B": 0.071, "det@C": 0.173, "det@D": 0.059}
PROCESSING_DELAY = {"det@B": 0.031, "det@C": 0.083, "det@D": 0.027}
PARITY_DURATION = 12.0
FRAME_GAP = 0.04
ARRIVAL_OFFSET = 0.013
#: det@D stops ACKing here, so un-ACKed tuples are retained for it...
SILENT_FROM = 4.0
#: ...until it is removed (crash observed) and replay redelivers them
KILL_AT = 4.5
REJOIN_AT = 8.25

PARITY_DELIVERY = DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=512,
                                 dedup_window=256, max_delivery_attempts=4)
PARITY_CONFIG = PolicyConfig(policy="LRS", seed=7, ack_timeout=0.5,
                             dead_after=2, control_interval=1e9,
                             delivery=PARITY_DELIVERY)


def _arrival_times():
    return [FRAME_GAP * i + ARRIVAL_OFFSET
            for i in range(int(PARITY_DURATION / FRAME_GAP))
            if FRAME_GAP * i + ARRIVAL_OFFSET < PARITY_DURATION]


def _tick_times():
    return [float(tick) for tick in range(1, int(PARITY_DURATION) + 1)]


def _silent(downstream_id, sent_at):
    return (downstream_id == "det@D" and sent_at >= SILENT_FROM)


def _counter_views(registry):
    views = {}
    for name in (metrics_mod.SENT_TOTAL, metrics_mod.ACKED_TOTAL,
                 metrics_mod.LOST_TOTAL, metrics_mod.MARKED_DEAD_TOTAL,
                 metrics_mod.REDELIVERED_TOTAL):
        views[name] = registry.values_by_label(name, "downstream")
    views[metrics_mod.REPLAY_EVICTED_TOTAL] = registry.values_by_label(
        metrics_mod.REPLAY_EVICTED_TOTAL, "reason")
    return views


def _run_runtime_side():
    """The real UpstreamDispatcher under a heapq mini event loop."""

    class FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    registry = metrics_mod.MetricsRegistry()
    events = []
    order = [0]

    def push(when, kind, payload=None):
        heapq.heappush(events, (when, order[0], kind, payload))
        order[0] += 1

    def fabric_send(worker_id, message):
        # Redeliveries are visible here (initial sends schedule their
        # ACK from the dispatch return value, mirroring the sim side).
        if message.payload.get("delivery_attempt", 1) > 1:
            instance = "det@%s" % worker_id
            push(clock.now + ACK_DELAY[instance], "ack",
                 (message.payload["seq"], PROCESSING_DELAY[instance]))

    dispatcher = UpstreamDispatcher("det", send=fabric_send, clock=clock,
                                    registry=registry, config=PARITY_CONFIG)
    dispatcher.set_downstreams(DOWNSTREAMS)

    for when in _arrival_times():
        push(when, "tuple")
    for when in _tick_times():
        push(when, "tick")
    push(KILL_AT, "kill")
    push(REJOIN_AT, "rejoin")

    choices = []
    seq = 0
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if now > PARITY_DURATION:
            break
        clock.now = now
        if kind == "tuple":
            data = DataTuple(values={"frame": seq}, seq=seq, created_at=now)
            seq += 1
            chosen = dispatcher.dispatch(data)
            choices.append(chosen)
            if chosen is not None and not _silent(chosen, now):
                push(now + ACK_DELAY[chosen], "ack",
                     (data.seq, PROCESSING_DELAY[chosen]))
        elif kind == "ack":
            ack_seq, processing_delay = payload
            dispatcher.on_ack(ack_seq, processing_delay)
        elif kind == "kill":
            dispatcher.remove_downstream("det@D")
        elif kind == "rejoin":
            dispatcher.add_downstream("det@D")
        else:
            dispatcher.force_update()

    return (choices, _counter_views(registry),
            dispatcher.controller.replay_depth())


def _run_sim_side():
    """The engine adapter on a bare Simulator, same trace."""
    sim = Simulator()
    registry = metrics_mod.MetricsRegistry()
    controller = engine_controller(
        sim, PARITY_CONFIG, registry=registry, name="det",
        redelivery=lambda seq, chosen, context, attempt: sim.schedule(
            ACK_DELAY[chosen],
            lambda: controller.on_ack(
                seq, processing_delay=PROCESSING_DELAY[chosen],
                now=sim.now)))
    controller.set_downstreams(DOWNSTREAMS)

    choices = []
    state = {"seq": 0}

    def _arrive():
        seq = state["seq"]
        state["seq"] += 1
        now = sim.now
        controller.observe_arrival(now)
        chosen = controller.dispatch(seq, context=b"frame")
        choices.append(chosen)
        if chosen is not None and not _silent(chosen, now):
            sim.schedule(ACK_DELAY[chosen],
                         lambda chosen=chosen, seq=seq:
                         controller.on_ack(
                             seq,
                             processing_delay=PROCESSING_DELAY[chosen],
                             now=sim.now))

    for when in _arrival_times():
        sim.schedule(when, _arrive)
    for when in _tick_times():
        sim.schedule(when, lambda: controller.update(sim.now))
    sim.schedule(KILL_AT, lambda: controller.remove_downstream("det@D"))
    sim.schedule(REJOIN_AT, lambda: controller.add_downstream("det@D"))
    sim.run(PARITY_DURATION)

    return choices, _counter_views(registry), controller.replay_depth()


class TestChurnParity:
    def test_trace_event_times_are_unique(self):
        times = list(_arrival_times()) + list(_tick_times())
        times += [KILL_AT, REJOIN_AT]
        for arrival in _arrival_times():
            for delay in ACK_DELAY.values():
                times.append(round(arrival + delay, 6))
        assert len(times) == len(set(times))

    def test_trace_exercises_redelivery(self):
        _, counters, depth = _run_sim_side()
        redelivered = counters[metrics_mod.REDELIVERED_TOTAL]
        assert sum(redelivered.values()) > 0
        # Only the in-flight tail (sent < one ACK delay before cutoff)
        # may still be retained; everything older was ACKed or replayed.
        assert depth <= 8

    def test_both_substrates_redeliver_identically(self):
        runtime_choices, runtime_counters, runtime_depth = _run_runtime_side()
        sim_choices, sim_counters, sim_depth = _run_sim_side()
        assert runtime_choices == sim_choices
        assert runtime_counters == sim_counters
        assert runtime_depth == sim_depth


# ---------------------------------------------------------------------------
# Threaded runtime under the chaos harness (wall-clock, bounded stream).
# ---------------------------------------------------------------------------

RUNTIME_TUPLES = 120


def _runtime(delivery=None, sleep_per_tuple=0.01):
    def work(value):
        time.sleep(sleep_per_tuple)  # real service time → a real backlog
        return {"y": value["x"] * 2}

    graph = (GraphBuilder("churn-app")
             .source("src", lambda: IterableSource(
                 [{"x": i} for i in range(RUNTIME_TUPLES)]))
             .unit("double", lambda: LambdaUnit(work))
             .sink("snk", CollectingSink)
             .chain("src", "double", "snk")
             .build())
    registry = metrics_mod.MetricsRegistry()
    runtime = SwingRuntime(graph, worker_ids=["B", "C"], policy="RR",
                           source_rate=100.0, seed=3, registry=registry,
                           delivery=delivery, heartbeat_interval=0.1,
                           heartbeat_timeout=0.6)
    return runtime, registry


def _await_sink(sink, expected, timeout=40.0):
    wait_until(
        lambda: len({data.seq for data in sink.results}) >= expected,
        timeout=timeout, poll=0.05,
        message="%d distinct seqs at the sink" % expected)
    # Stragglers (duplicate redeliveries) may still be in flight; wait
    # for the sink to go quiet instead of a fixed grace sleep.
    wait_quiescent(lambda: len(sink.results))
    return [data.seq for data in sink.results]


class TestRuntimeChurn:
    def test_crash_and_rejoin_lose_nothing_at_least_once(self):
        delivery = DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=512,
                                  dedup_window=2048, redelivery_timeout=0.4)
        runtime, registry = _runtime(delivery=delivery, sleep_per_tuple=0.02)
        runtime.start()
        try:
            sink = runtime.sink_unit()
            # Mid-stream: B holds un-ACKed in-flight tuples when it dies.
            wait_until(lambda: len(sink.results) >= 10,
                       message="an in-flight backlog before the crash")
            runtime.crash_worker("B")
            # Keep B down until the master has noticed the silence —
            # the scenario is crash-detect-redeliver, not a blip.
            wait_until(lambda: "B" not in runtime.master.pool.worker_ids,
                       message="the master detecting B's crash")
            runtime.spawn_worker("B")
            got = _await_sink(sink, RUNTIME_TUPLES)
        finally:
            runtime.stop()
        missing = sorted(set(range(RUNTIME_TUPLES)) - set(got))
        assert missing == []
        # The dedup window (2048 >> stream length) sees every duplicate
        # redelivery produces, so none reach the sink.
        assert len(got) == len(set(got)) == RUNTIME_TUPLES

    def test_drain_and_rejoin_lose_nothing_best_effort(self):
        # Redelivery disabled: the LEAVING protocol alone carries it.
        runtime, registry = _runtime(delivery=None, sleep_per_tuple=0.01)
        runtime.start()
        try:
            sink = runtime.sink_unit()
            schedule = ChurnSchedule(events=(
                ChurnEvent(0.5, CHURN_LEAVE, "B"),
                ChurnEvent(1.6, CHURN_REJOIN, "B")))
            harness = ChurnHarness(runtime, schedule)
            harness.run()
            got = _await_sink(sink, RUNTIME_TUPLES)
        finally:
            runtime.stop()
        assert sorted(set(got)) == list(range(RUNTIME_TUPLES))
        assert harness.drain_seconds["B"] > 0.0
        assert [event.action for event, _ in harness.applied] == [
            "leave", "rejoin"]
        assert registry.histogram(metrics_mod.DRAIN_SECONDS,
                                  device="B").count >= 1
