"""Multi-tenant isolation: many pipelines, one swarm, fair-share admission.

The tentpole guarantee of the multi-tenant control plane: N tenant
pipelines share one worker pool, and a tenant that overruns its admitted
rate sheds *its own* tuples — the victim tenants' latency, loss
accounting and shed counters stay unharmed.  Asserted on both
substrates:

- **simulator soak**: three tenants at an even rate, then the same run
  with one tenant ramped to 4x.  The victims must lose nothing
  end-to-end (at-least-once), their p99 latency must stay within 10% of
  the single-rate baseline, and every shed must carry the hot tenant's
  label.
- **threaded runtime**: three tenant pipelines over one shared pool
  with bounded, fair-share mailboxes.  A flooding tenant may shed, the
  victims' bounded streams must arrive complete.

Plus unit coverage of the shared pure decision function
(:func:`repro.core.multitenant.fair_admission`) and the weighted budget
split, and the N=1 byte-identity contract: a tenant-free run must show
no ``tenant=`` label and no tenant-scoped name anywhere.
"""


import pytest

from repro import metrics as metrics_mod
from repro.core import overload as overload_mod
from repro.core.function_unit import CollectingSink, IterableSource, LambdaUnit
from repro.core.graph import GraphBuilder
from repro.core.multitenant import (PipelineDeployment, TenantSpec,
                                    fair_admission, tenant_budgets)
from repro.core.overload import OverloadConfig
from repro.core.exceptions import RuntimeStateError
from repro.runtime.app_runner import MultiTenantRuntime
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

from tests.integration.waiting import wait_quiescent, wait_until

SEED = 3
DURATION = 25.0
PER_TENANT_RATE = 6.0
HOT = "t0"
VICTIMS = ("t1", "t2")
WARMUP = 5.0
#: judge loss on frames old enough for every redelivery to land
HORIZON = DURATION - 5.0


def _p99(samples):
    ordered = sorted(samples)
    assert ordered, "no latency samples"
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


@pytest.fixture(scope="module")
def baseline():
    """Every tenant at its fair rate: the p99 reference point."""
    return run_swarm(scenarios.tenants(seed=SEED, duration=DURATION,
                                       per_tenant_rate=PER_TENANT_RATE))


@pytest.fixture(scope="module")
def hot_run():
    """The same swarm with tenant t0 ramped to 4x its admitted rate."""
    return run_swarm(scenarios.tenants(seed=SEED, duration=DURATION,
                                       per_tenant_rate=PER_TENANT_RATE,
                                       hot_tenant=HOT, hot_rate_factor=4.0))


@pytest.mark.slow
class TestSimulatorIsolationSoak:
    def test_hot_tenant_sheds_under_its_own_label_only(self, hot_run):
        assert hot_run.shed_by_tenant.get(HOT, 0) > 0
        assert set(hot_run.shed_by_tenant) == {HOT}

    def test_victims_lose_nothing_end_to_end(self, hot_run):
        for tenant in VICTIMS:
            assert hot_run.tenant_losses(tenant, horizon=HORIZON) == []

    def test_victim_p99_within_ten_percent_of_baseline(self, baseline,
                                                       hot_run):
        for tenant in VICTIMS:
            before = _p99(baseline.tenant_latency_samples(tenant,
                                                          after=WARMUP))
            after = _p99(hot_run.tenant_latency_samples(tenant,
                                                        after=WARMUP))
            assert after <= before * 1.10, (
                "victim %s p99 degraded %.3fs -> %.3fs"
                % (tenant, before, after))

    def test_victim_throughput_holds(self, hot_run):
        for tenant in VICTIMS:
            assert (hot_run.tenant_throughput(tenant)
                    >= 0.9 * PER_TENANT_RATE)

    def test_every_frame_is_tagged_with_its_tenant(self, hot_run):
        tenants = {record.tenant
                   for record in hot_run.metrics.frames.values()}
        assert tenants == {HOT, "t1", "t2"}

    def test_hot_tenant_still_gets_its_fair_share(self, hot_run):
        # Fair-share is not starvation: the flooding tenant keeps at
        # least its admitted rate even while shedding the excess.
        assert hot_run.tenant_throughput(HOT) >= 0.9 * PER_TENANT_RATE

    def test_per_tenant_latency_views_cover_all_tenants(self, hot_run):
        for tenant in (HOT,) + VICTIMS:
            stats = hot_run.tenant_latency(tenant, after=WARMUP)
            assert stats is not None and stats.count > 0

    def test_worker_ingress_depths_stay_bounded(self, hot_run):
        capacity = hot_run.config.overload.queue_capacity
        for name, depth in hot_run.max_queue_depths.items():
            if name.startswith("ingress:"):
                assert depth <= capacity, name


@pytest.mark.slow
class TestSingleTenantByteIdentity:
    """A tenant-free run must be indistinguishable from the seed system."""

    @pytest.fixture(scope="class")
    def single(self):
        return run_swarm(scenarios.overload(seed=3, duration=12.0,
                                            overload_until=10.0,
                                            kill_id=None))

    def test_no_tenant_label_on_any_counter(self, single):
        for counter in single.registry.counters():
            assert "tenant" not in counter.labels, counter.name

    def test_no_tenant_scoped_queue_names(self, single):
        for gauge in single.registry.gauges():
            queue = gauge.labels.get("queue", "")
            assert "@" not in queue, queue
        for name in single.max_queue_depths:
            assert "@" not in name, name

    def test_shed_by_tenant_view_is_empty(self, single):
        assert single.shed_by_tenant == {}

    def test_frames_carry_the_default_tenant(self, single):
        assert {record.tenant
                for record in single.metrics.frames.values()} == {""}


class TestFairAdmissionFunction:
    BUDGETS = {"a": 4, "b": 4, "c": 4}

    def test_admits_while_the_queue_has_space(self):
        decision = fair_admission("a", {"a": 11}, self.BUDGETS, 12)
        assert decision.action == overload_mod.ADMIT

    def test_unbounded_queue_always_admits(self):
        decision = fair_admission("a", {"a": 999}, self.BUDGETS, None)
        assert decision.action == overload_mod.ADMIT

    def test_over_budget_tenant_sheds_its_own_arrival(self):
        decision = fair_admission("a", {"a": 8, "b": 2, "c": 2},
                                  self.BUDGETS, 12)
        assert decision.action == overload_mod.REJECT

    def test_under_budget_arrival_evicts_the_most_over_budget(self):
        decision = fair_admission("c", {"a": 7, "b": 5, "c": 0},
                                  self.BUDGETS, 12)
        assert decision.action == overload_mod.EVICT_OLDEST
        assert decision.victim == "a"

    def test_lowest_priority_tier_sheds_first(self):
        decision = fair_admission(
            "c", {"a": 6, "b": 6, "c": 0}, self.BUDGETS, 12,
            priorities={"a": 1, "b": 0, "c": 0})
        assert decision.victim == "b"  # lower tier loses despite the tie

    def test_tenant_id_breaks_remaining_ties_deterministically(self):
        decision = fair_admission("c", {"a": 6, "b": 6, "c": 0},
                                  self.BUDGETS, 12)
        assert decision.victim == "a"

    def test_full_queue_with_no_overbudget_tenant_rejects(self):
        budgets = {"a": 6, "b": 6}
        decision = fair_admission("a", {"a": 6, "b": 6}, budgets, 12)
        assert decision.action == overload_mod.REJECT

    def test_unknown_tenant_has_zero_budget(self):
        decision = fair_admission("ghost", {"a": 12}, self.BUDGETS, 12)
        assert decision.action == overload_mod.REJECT


class TestTenantBudgets:
    def test_weighted_split(self):
        specs = [TenantSpec("a", weight=2.0), TenantSpec("b", weight=1.0),
                 TenantSpec("c", weight=1.0)]
        assert tenant_budgets(specs, 16) == {"a": 8, "b": 4, "c": 4}

    def test_every_tenant_gets_at_least_one_slot(self):
        specs = [TenantSpec("a", weight=100.0), TenantSpec("b", weight=0.01)]
        budgets = tenant_budgets(specs, 8)
        assert budgets["b"] == 1

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(RuntimeStateError):
            tenant_budgets([TenantSpec("a"), TenantSpec("a")], 8)

    def test_tenant_id_separator_chars_rejected(self):
        for bad in ("a:b", "a>b", "a@b", ""):
            with pytest.raises(RuntimeStateError):
                TenantSpec(bad)

    def test_deployment_exposes_its_tenant(self):
        deployment = PipelineDeployment(spec=TenantSpec("alpha"))
        assert deployment.tenant_id == "alpha"


# ---------------------------------------------------------------------------
# Threaded runtime: shared pool, bounded fair-share mailboxes.
# ---------------------------------------------------------------------------

VICTIM_TUPLES = 40


def _pipeline(tag, count):
    return (GraphBuilder("app-%s" % tag)
            .source("src", lambda: IterableSource(
                [{"x": i, "tag": tag} for i in range(count)]))
            .unit("double", lambda: LambdaUnit(
                lambda value: {"y": value["x"] * 2, "tag": value["tag"]}))
            .sink("snk", CollectingSink)
            .chain("src", "double", "snk")
            .build())


def _await_tenants(runtime, expectations, timeout=30.0):
    wait_until(
        lambda: all(len({data.seq for data in runtime.results(tenant)}) >= want
                    for tenant, want in expectations.items()),
        timeout=timeout, poll=0.05,
        message="tenants %s completing" % sorted(expectations))
    # Stragglers may still be in flight; wait for every tenant's sink
    # to go quiet instead of a fixed grace sleep.
    wait_quiescent(lambda: {tenant: len(runtime.results(tenant))
                            for tenant in expectations})


@pytest.mark.slow
class TestRuntimeIsolation:
    def test_victims_complete_while_a_tenant_floods(self):
        registry = metrics_mod.MetricsRegistry()
        pipelines = [
            (TenantSpec("hot", weight=1.0, input_rate=250.0),
             _pipeline("hot", 400)),
            (TenantSpec("v1", weight=1.0, input_rate=30.0),
             _pipeline("v1", VICTIM_TUPLES)),
            (TenantSpec("v2", weight=1.0, input_rate=30.0),
             _pipeline("v2", VICTIM_TUPLES)),
        ]
        runtime = MultiTenantRuntime(
            pipelines, worker_ids=["B", "C"], policy="RR", seed=3,
            overload=OverloadConfig(queue_capacity=12), registry=registry)
        runtime.start()
        try:
            _await_tenants(runtime, {"v1": VICTIM_TUPLES,
                                     "v2": VICTIM_TUPLES})
            victims = {tenant: sorted({data.seq
                                       for data in runtime.results(tenant)})
                       for tenant in ("v1", "v2")}
        finally:
            runtime.stop()
        # Every victim tuple arrived despite the flood next door...
        for tenant in ("v1", "v2"):
            assert victims[tenant] == list(range(VICTIM_TUPLES)), tenant
        # ...and whatever was shed carried the flooding tenant's label.
        shed_tenants = registry.values_by_label(metrics_mod.SHED_TOTAL,
                                                "tenant")
        assert set(shed_tenants) <= {"hot"}

    def test_tenants_route_to_their_own_sinks(self):
        pipelines = [
            (TenantSpec("alpha", input_rate=120.0), _pipeline("alpha", 30)),
            (TenantSpec("beta", input_rate=120.0), _pipeline("beta", 30)),
        ]
        runtime = MultiTenantRuntime(pipelines, worker_ids=["B", "C"],
                                     policy="RR", seed=1)
        runtime.start()
        try:
            _await_tenants(runtime, {"alpha": 30, "beta": 30})
            by_tenant = {tenant: runtime.results(tenant)
                         for tenant in ("alpha", "beta")}
        finally:
            runtime.stop()
        for tenant, results in by_tenant.items():
            assert {data.values["tag"] for data in results} == {tenant}
            assert all(data.tenant == tenant for data in results)
            assert sorted({data.seq for data in results}) == list(range(30))

    def test_stop_tenant_leaves_the_others_running(self):
        pipelines = [
            (TenantSpec("alpha", input_rate=40.0), _pipeline("alpha", 200)),
            (TenantSpec("beta", input_rate=120.0), _pipeline("beta", 60)),
        ]
        runtime = MultiTenantRuntime(pipelines, worker_ids=["B", "C"],
                                     policy="RR", seed=1)
        runtime.start()
        try:
            # Mid-run: alpha must be stopped while still short of done.
            wait_until(lambda: runtime.results("alpha"),
                       message="alpha's first delivery")
            runtime.stop_tenant("alpha")
            alpha_frozen = len({d.seq for d in runtime.results("alpha")})
            _await_tenants(runtime, {"beta": 60})
            beta = sorted({d.seq for d in runtime.results("beta")})
            alpha_after = len({d.seq for d in runtime.results("alpha")})
        finally:
            runtime.stop()
        assert beta == list(range(60))          # the survivor finished
        assert alpha_frozen < 200               # the stopped tenant did not
        assert alpha_after <= alpha_frozen + 2  # and stayed stopped

    def test_processed_by_tenant_accounting(self):
        pipelines = [
            (TenantSpec("alpha", input_rate=150.0), _pipeline("alpha", 50)),
            (TenantSpec("beta", input_rate=150.0), _pipeline("beta", 50)),
        ]
        runtime = MultiTenantRuntime(pipelines, worker_ids=["B", "C"],
                                     policy="RR", seed=2)
        runtime.start()
        try:
            _await_tenants(runtime, {"alpha": 50, "beta": 50})
        finally:
            runtime.stop()
        totals = {"alpha": 0, "beta": 0}
        for host in [runtime.master.runtime] + list(
                runtime.workers.values()):
            for tenant, count in host.processed_by_tenant.items():
                totals[tenant] = totals.get(tenant, 0) + count
        assert totals["alpha"] >= 50
        assert totals["beta"] >= 50

    def test_budgets_installed_on_every_mailbox(self):
        pipelines = [
            (TenantSpec("alpha", weight=3.0), _pipeline("alpha", 1)),
            (TenantSpec("beta", weight=1.0), _pipeline("beta", 1)),
        ]
        runtime = MultiTenantRuntime(
            pipelines, worker_ids=["B"], policy="RR",
            overload=OverloadConfig(queue_capacity=8))
        expected = tenant_budgets([spec for spec, _ in pipelines], 8)
        assert expected == {"alpha": 6, "beta": 2}
        for host in [runtime.master.runtime] + list(
                runtime.workers.values()):
            assert host.mailbox._tenant_budgets == expected
        runtime.fabric.close()
