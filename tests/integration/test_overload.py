"""Chaos/soak tests for the overload-protection layer.

Drives the swarm into sustained overload (Lambda > sum of mu_i) with a
mid-run silent kill/revive, and requires graceful degradation instead of
collapse: bounded queue depths, no stale deliveries, monotone shed
counters, conservation of tuples, and latency/throughput recovery once
the background load lifts.  A parity harness replays one admission trace
through the runtime's Mailbox and the simulator's ingress path and
requires identical shedding decisions — both sides consult the same
:func:`repro.core.overload.admission` function.
"""

import statistics

import pytest

from repro import metrics as metrics_mod
from repro import profiles
from repro.core.overload import (DROP_NEWEST, DROP_OLDEST, OverloadConfig,
                                 REASON_BACKPRESSURE, REASON_EXPIRED,
                                 REASON_QUEUE_FULL)
from repro.runtime import messages
from repro.runtime.fabric import Mailbox
from repro.simulation import scenarios
from repro.simulation.swarm import (DeviceKillEvent, SwarmConfig,
                                    SwarmSimulation, _Frame, run_swarm)
from repro.simulation.workload import face_workload

OVERLOAD_UNTIL = 14.0
TTL = 2.0
QUEUE_CAPACITY = 8


@pytest.fixture(scope="module")
def soak():
    """One full chaos/soak run shared by the invariant assertions."""
    return run_swarm(scenarios.overload(seed=3, overload_until=OVERLOAD_UNTIL,
                                        ttl=TTL,
                                        queue_capacity=QUEUE_CAPACITY))


@pytest.mark.slow
class TestOverloadSoak:
    def test_queue_depths_stay_bounded(self, soak):
        ingress_depths = {name: depth
                          for name, depth in soak.max_queue_depths.items()
                          if name.startswith("ingress:")}
        assert len(ingress_depths) == 3  # every worker reported
        for name, depth in ingress_depths.items():
            assert depth <= QUEUE_CAPACITY, name
        egress = soak.max_queue_depths["egress:A"]
        capacity = soak.config.resolved_source_queue()
        assert egress <= capacity

    def test_tuple_conservation(self, soak):
        records = soak.metrics.frames.values()
        completed = sum(1 for record in records if record.completed)
        dropped = sum(1 for record in records if record.dropped is not None)
        in_flight = sum(1 for record in records
                        if record.sink_arrived_at is None
                        and record.dropped is None)
        assert completed + dropped + in_flight == soak.metrics.generated
        # Bounded memory: whatever was still in flight at the horizon
        # fits in the bounded queues plus the socket windows.
        assert in_flight <= 4 * QUEUE_CAPACITY
        assert completed > 0 and dropped > 0

    def test_no_delivered_tuple_exceeds_its_deadline(self, soak):
        delays = [record.total_delay
                  for record in soak.metrics.completed_frames()]
        assert delays
        assert max(delays) <= TTL + 1e-9

    def test_shed_counters_cover_the_overload(self, soak):
        # Sustained Lambda > sum(mu) with a 2 s TTL must shed stale work.
        assert soak.shed_by_reason.get(REASON_EXPIRED, 0) > 0
        # Every shed carries a known reason label.
        assert set(soak.shed_by_reason) <= {REASON_EXPIRED,
                                            REASON_QUEUE_FULL,
                                            REASON_BACKPRESSURE}

    def test_latency_recovers_after_the_load_drops(self, soak):
        completed = soak.metrics.completed_frames()
        early = [record.total_delay for record in completed
                 if 2.0 <= record.created_at < OVERLOAD_UNTIL]
        late = [record.total_delay for record in completed
                if record.created_at >= OVERLOAD_UNTIL + 2.0]
        assert early and late
        assert statistics.median(early) > 1.0  # deep in overload
        assert statistics.median(late) < 0.5   # recovered

    def test_throughput_recovers_after_the_load_drops(self, soak):
        window_start = OVERLOAD_UNTIL + 2.0
        window = soak.config.duration - window_start
        late = sum(1 for record in soak.metrics.completed_frames()
                   if record.created_at >= window_start)
        input_rate = soak.config.workload.input_rate
        assert late / window >= 0.9 * input_rate

    def test_mid_overload_kill_is_charged_to_the_killed_device(self, soak):
        assert soak.lost_by_downstream.get("G", 0) > 0
        # ...and the revive brought it back before the end of the run.
        assert "G" not in soak.dead_downstreams

    def test_queue_depth_gauges_exported(self, soak):
        depths = {gauge.labels.get("queue"): gauge.value
                  for gauge in soak.registry.gauges()
                  if gauge.name == metrics_mod.QUEUE_DEPTH}
        assert "egress:A" in depths
        assert any(name.startswith("ingress:") for name in depths)


@pytest.mark.slow
class TestShedBehaviors:
    def test_shed_counters_are_monotone(self):
        config = scenarios.overload(seed=3, duration=20.0, kill_id=None)
        swarm = SwarmSimulation(config)
        totals = []
        for tick in range(1, 21):
            swarm.sim.run(float(tick))
            by_reason = swarm.registry.values_by_label(
                metrics_mod.SHED_TOTAL, "reason")
            totals.append(sum(by_reason.values()))
        assert totals == sorted(totals)
        assert totals[-1] > 0

    def test_tiny_ingress_queues_shed_queue_full(self):
        result = run_swarm(scenarios.overload(seed=1, duration=12.0,
                                              overload_until=10.0,
                                              kill_id=None,
                                              queue_capacity=2))
        assert result.shed_by_reason.get(REASON_QUEUE_FULL, 0) > 0
        for name, depth in result.max_queue_depths.items():
            if name.startswith("ingress:"):
                assert depth <= 2, name

    def test_backpressure_depth_sheds_at_the_source(self):
        config = scenarios.overload(seed=1, duration=12.0,
                                    overload_until=10.0, kill_id=None)
        config.overload = OverloadConfig(ttl=TTL,
                                         queue_capacity=QUEUE_CAPACITY,
                                         backpressure_depth=4)
        result = run_swarm(config)
        assert result.shed_by_reason.get(REASON_BACKPRESSURE, 0) > 0

    def test_all_downstreams_dead_sheds_at_the_source(self):
        # Kill the only worker with no revive: once the tracker marks it
        # dead, dispatching would only manufacture guaranteed losses, so
        # the source must shed instead of generating doomed tuples.
        config = SwarmConfig(
            workload=face_workload(),
            workers=profiles.worker_profiles(["B"]),
            source=profiles.device_profile(profiles.SOURCE_ID),
            policy="LRS",
            duration=12.0,
            seed=0,
            ack_timeout=1.0,
            dead_after=2,
            faults=(DeviceKillEvent(time=4.0, device_id="B"),),
            overload=OverloadConfig(ttl=TTL, queue_capacity=QUEUE_CAPACITY),
        )
        result = run_swarm(config)
        assert "B" in result.dead_downstreams
        assert result.shed_by_reason.get(REASON_BACKPRESSURE, 0) > 0
        # Once shedding at source, no further losses pile up: sheds keep
        # the loss count bounded by what was in flight around the kill.
        shed = result.shed_by_reason[REASON_BACKPRESSURE]
        assert shed > result.lost_by_downstream.get("B", 0)


class TestSubstrateSheddingParity:
    """The runtime Mailbox and the simulator ingress must shed identically.

    Both consult :func:`repro.core.overload.admission`; replaying one
    put/get trace through each side must keep the same survivors in the
    same order — the property that makes simulator results transfer to
    the runtime under overload.
    """

    TRACE = ([("put", seq) for seq in range(4)]
             + [("get",), ("put", 4), ("put", 5), ("get",), ("get",),
                ("put", 6), ("put", 7), ("put", 8), ("get",), ("put", 9)])

    def _runtime_survivors(self, overload):
        mailbox = Mailbox("W", overload=overload,
                          registry=metrics_mod.MetricsRegistry())
        out = []
        for op in self.TRACE:
            if op[0] == "put":
                mailbox.put("A", messages.data_message("u", b"x", op[1], 0.0))
            else:
                out.append(mailbox.get(timeout=0.1)[1].payload["seq"])
        while len(mailbox):
            out.append(mailbox.get(timeout=0.1)[1].payload["seq"])
        return out

    def _sim_survivors(self, overload):
        config = scenarios.overload(worker_ids=("B",), kill_id=None,
                                    ttl=overload.ttl,
                                    queue_capacity=overload.queue_capacity,
                                    drop_policy=overload.drop_policy)
        swarm = SwarmSimulation(config)  # built, never run
        node = swarm.nodes["B"]
        out = []
        for op in self.TRACE:
            if op[0] == "put":
                swarm._ingress_put(node, _Frame(seq=op[1], created_at=0.0))
            else:
                out.append(node.ingress.try_get().seq)
        while True:
            frame = node.ingress.try_get()
            if frame is None:
                break
            out.append(frame.seq)
        return out

    @pytest.mark.parametrize("policy", [DROP_OLDEST, DROP_NEWEST])
    def test_identical_survivors_across_substrates(self, policy):
        overload = OverloadConfig(queue_capacity=3, drop_policy=policy)
        assert (self._runtime_survivors(overload)
                == self._sim_survivors(overload))

    def test_drop_oldest_keeps_the_newest_frames(self):
        overload = OverloadConfig(queue_capacity=3, drop_policy=DROP_OLDEST)
        survivors = self._runtime_survivors(overload)
        # Capacity 3: seq 0 is evicted by seq 3's arrival, and so on —
        # the exact survivor set is fully determined by the trace.
        assert survivors == self._sim_survivors(overload)
        assert survivors[0] != 0  # the oldest frame was shed
        assert 9 in survivors     # the newest frame always survives
