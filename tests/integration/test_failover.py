"""Master crash-recovery: checkpointing, epoch fencing, zero-loss failover.

The recovery guarantee under a mid-run master kill + restart:

- **at-least-once × master crash**: workers keep their units through the
  outage; the successor master restores the checkpoint (membership,
  dedup high-water marks, replay retention), waits for survivors to
  re-register, and redelivers only unacknowledged retention.  The union
  of what reached the sink before and after the crash covers the whole
  stream with no duplicate — zero end-to-end loss.
- **epoch fencing**: control traffic stamped with a stale epoch after a
  recovery is rejected and counted (``swing_fenced_messages_total``) —
  a zombie predecessor cannot stop or re-deploy a worker that already
  follows the successor.
- **simulator parity**: the same kill/restart trace on the discrete
  engine (``scenarios.failover``) recovers with zero loss.
- **rejoin during drain**: a re-registration racing the previous
  incarnation's LEAVING drain starts from a clean slate — no stale
  failure history, no lost or duplicated tuples.
"""

import threading
import time

import pytest

from tests.integration.waiting import wait_quiescent, wait_until

from repro import metrics as metrics_mod
from repro.core.delivery import AT_LEAST_ONCE, DeliveryConfig
from repro.core.function_unit import CollectingSink, IterableSource, LambdaUnit
from repro.core.graph import GraphBuilder
from repro.core.recovery import InMemoryCheckpointStore, RecoveryConfig
from repro.runtime import messages
from repro.runtime.app_runner import SwingRuntime
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

TUPLES = 150
DURATION = 40.0
SETTLE = 10.0
HORIZON = DURATION - SETTLE / 2.0


def _build_runtime(store, sleep_per_tuple=0.01):
    def work(value):
        time.sleep(sleep_per_tuple)
        return {"y": value["x"] * 2}

    graph = (GraphBuilder("failover-app")
             .source("src", lambda: IterableSource(
                 [{"x": i} for i in range(TUPLES)]))
             .unit("double", lambda: LambdaUnit(work))
             .sink("snk", CollectingSink)
             .chain("src", "double", "snk")
             .build())
    registry = metrics_mod.MetricsRegistry()
    delivery = DeliveryConfig(mode=AT_LEAST_ONCE, replay_capacity=1024,
                              dedup_window=4096, redelivery_timeout=0.4)
    runtime = SwingRuntime(
        graph, worker_ids=["B", "C"], policy="RR", source_rate=60.0,
        seed=5, registry=registry, delivery=delivery,
        heartbeat_interval=0.1, heartbeat_timeout=0.6,
        recovery=RecoveryConfig(checkpoint_interval=0.2),
        checkpoint_store=store)
    return runtime, registry


def _await_seqs(sinks, expected, timeout=40.0):
    """Poll the union of several sink instances for *expected* seqs."""
    wait_until(
        lambda: len({data.seq for sink in sinks
                     for data in sink.results}) >= expected,
        timeout=timeout, poll=0.05,
        message="%d distinct seqs across %d sink(s)"
                % (expected, len(sinks)))
    # Straggling duplicates may still be in flight; wait for the sinks
    # to go quiet instead of sleeping a fixed grace period.
    wait_quiescent(lambda: sum(len(sink.results) for sink in sinks))
    return [data.seq for sink in sinks for data in sink.results]


class TestThreadedFailover:
    def test_master_kill_and_restart_loses_nothing(self):
        store = InMemoryCheckpointStore()
        runtime, registry = _build_runtime(store)
        runtime.start()
        try:
            old_sink = runtime.sink_unit()
            # Mid-run: some tuples delivered, plenty still in flight.
            wait_until(lambda: len(old_sink.results) >= 10,
                       message="partial delivery before the crash")
            runtime.crash_master()
            assert store.load() is not None  # WAL stand-in written
            # Outage: workers keep running; nothing routes new capture.
            time.sleep(0.5)
            imported = runtime.restart_master()
            assert imported >= 0
            new_sink = runtime.sink_unit()
            assert new_sink is not old_sink  # a real successor
            got = _await_seqs([old_sink, new_sink], TUPLES)
        finally:
            runtime.stop()
        missing = sorted(set(range(TUPLES)) - set(got))
        assert missing == []
        # The restored dedup window absorbs every cross-incarnation
        # duplicate: each seq reached a sink exactly once overall.
        assert len(got) == len(set(got)) == TUPLES
        assert registry.value(metrics_mod.MASTER_RECOVERIES_TOTAL,
                              device="A") == 1
        assert registry.gauge_value(
            metrics_mod.CHECKPOINT_AGE_SECONDS) >= 0.0

    def test_workers_adopt_the_successor_epoch(self):
        store = InMemoryCheckpointStore()
        runtime, _registry = _build_runtime(store)
        runtime.start()
        try:
            assert all(worker.master_epoch == 0
                       for worker in runtime.workers.values())
            wait_until(lambda: runtime.sink_unit().results,
                       message="first delivery before the crash")
            runtime.crash_master()
            checkpointed_epoch = 0  # first incarnation never recovered
            runtime.restart_master()
            assert runtime.master.pool.epoch == checkpointed_epoch + 1
            wait_until(
                lambda: all(worker.master_epoch == runtime.master.pool.epoch
                            for worker in runtime.workers.values()),
                message="workers adopting the successor epoch")
        finally:
            runtime.stop()

    def test_stale_epoch_control_message_is_fenced(self):
        store = InMemoryCheckpointStore()
        runtime, registry = _build_runtime(store)
        runtime.start()
        try:
            wait_until(lambda: runtime.sink_unit().results,
                       message="first delivery before the crash")
            runtime.crash_master()
            runtime.restart_master()
            worker = runtime.workers["B"]
            wait_until(
                lambda: worker.master_epoch >= runtime.master.pool.epoch,
                message="worker B adopting the successor epoch")
            assert worker.master_epoch >= 1
            before = registry.value(metrics_mod.FENCED_TOTAL,
                                    device="B", kind=messages.STOP)
            # A zombie of the dead incarnation (epoch 0) orders a STOP.
            runtime.fabric.send("A", "B", messages.stop_message())
            wait_until(
                lambda: registry.value(metrics_mod.FENCED_TOTAL,
                                       device="B",
                                       kind=messages.STOP) > before,
                message="the stale STOP being fenced")
            assert registry.value(metrics_mod.FENCED_TOTAL,
                                  device="B", kind=messages.STOP) \
                == before + 1
            # The worker ignored the zombie: still serving the successor.
            assert worker.hosted_units()
        finally:
            runtime.stop()


class TestRejoinDuringDrain:
    def test_rejoin_racing_a_drain_starts_clean(self):
        store = InMemoryCheckpointStore()
        runtime, _registry = _build_runtime(store)
        runtime.start()
        try:
            sink = runtime.sink_unit()
            pool = runtime.master.pool
            wait_until(lambda: sink.results,
                       message="first delivery before the drain")
            drained = {}

            def drain():
                drained["elapsed"] = runtime.drain_worker("B", quiet=0.3)

            drain_thread = threading.Thread(target=drain)
            drain_thread.start()
            # Wait for the LEAVING to land: B leaves the routing tables
            # while its old incarnation is still draining its queue.
            wait_until(lambda: "B" not in pool.worker_ids, poll=0.01,
                       message="the LEAVING to land")
            assert "B" not in pool.worker_ids
            assert drain_thread.is_alive()  # the drain is mid-flight
            # A new incarnation re-registers during the drain.
            runtime.fabric.send("B", "A", messages.join_message("B"))
            wait_until(lambda: "B" in pool.worker_ids, poll=0.01,
                       message="the rejoin registration")
            assert "B" in pool.worker_ids
            # Clean slate: no failure history resurrected from the
            # previous incarnation's pending state.
            assert not pool.health.is_dead("B")
            snapshot = pool.health.snapshot()
            assert snapshot["B"].consecutive_failures == 0
            drain_thread.join(timeout=15.0)
            assert not drain_thread.is_alive()
            assert drained["elapsed"] >= 0.0
            got = _await_seqs([sink], TUPLES)
        finally:
            runtime.stop()
        assert sorted(set(got)) == list(range(TUPLES))
        assert len(got) == len(set(got)) == TUPLES


class TestSimulatorFailover:
    @pytest.fixture(scope="class")
    def at_least_once(self):
        return run_swarm(scenarios.failover(seed=11, duration=DURATION,
                                            settle=SETTLE))

    def test_schedule_kills_and_restarts_the_master(self, at_least_once):
        actions = [event.action for event in at_least_once.config.churn]
        assert actions == ["kill_master", "restart_master"]

    def test_master_recovery_happened(self, at_least_once):
        assert at_least_once.master_recoveries == 1

    def test_zero_tuple_loss(self, at_least_once):
        assert at_least_once.end_to_end_losses(HORIZON) == []

    def test_sink_never_double_counts(self, at_least_once):
        frames = at_least_once.metrics.frames
        arrived = [seq for seq, record in frames.items()
                   if record.sink_arrived_at is not None]
        assert arrived  # the pipeline actually delivered something
        assert len(arrived) == len(set(arrived))

    def test_outage_pauses_capture(self, at_least_once):
        # No new frames are captured while the master is down; the
        # captured timeline must have a hole covering the outage.
        frames = at_least_once.metrics.frames
        config = at_least_once.config
        kill = next(e.time for e in config.churn
                    if e.action == "kill_master")
        restart = next(e.time for e in config.churn
                       if e.action == "restart_master")
        captured_during_outage = [
            seq for seq, record in frames.items()
            if kill + 0.5 < record.created_at < restart - 0.5]
        assert captured_during_outage == []

    def test_best_effort_still_recovers_the_master(self):
        result = run_swarm(scenarios.failover(seed=11, duration=DURATION,
                                              settle=SETTLE,
                                              at_least_once=False))
        assert result.master_recoveries == 1
        assert result.redelivered == 0  # machinery stays cold
