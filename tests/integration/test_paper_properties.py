"""Integration tests asserting the paper's headline claims hold.

These run the calibrated simulator on (shortened) versions of the
Sec. VI experiments and check the qualitative results the paper reports:
who wins, roughly by how much, and how the system reacts to dynamics.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP, TRANSLATE_APP

DURATION = 40.0


@pytest.fixture(scope="module")
def face_results():
    return {policy: run_swarm(scenarios.testbed(app=FACE_APP, policy=policy,
                                                duration=DURATION))
            for policy in ("RR", "PR", "LR", "PRS", "LRS")}


@pytest.fixture(scope="module")
def translation_results():
    return {policy: run_swarm(scenarios.testbed(app=TRANSLATE_APP,
                                                policy=policy,
                                                duration=DURATION))
            for policy in ("RR", "PR", "LR", "PRS", "LRS")}


class TestHeadlineClaims:
    """Sec. I / VI-B: 'LRS provides 2.7x improvement in throughput and
    6.7x reduction in average latency' over RR."""

    def test_lrs_throughput_gain_over_rr(self, face_results):
        gain = (face_results["LRS"].throughput
                / face_results["RR"].throughput)
        assert 1.8 <= gain <= 4.0  # paper: 2.7x

    def test_lrs_latency_reduction_over_rr(self, face_results):
        reduction = (face_results["RR"].latency.mean
                     / face_results["LRS"].latency.mean)
        assert reduction >= 4.0  # paper: 6.7x

    def test_lrs_meets_realtime_target_face(self, face_results):
        assert face_results["LRS"].meets_input_rate(tolerance=0.10)

    def test_lrs_meets_realtime_target_translation(self, translation_results):
        assert translation_results["LRS"].meets_input_rate(tolerance=0.15)


class TestPolicyOrdering:
    """Fig. 4: latency-based methods beat processing-based and RR."""

    def test_latency_methods_have_lower_latency(self, face_results):
        for latency_policy in ("LR", "LRS"):
            for baseline in ("RR", "PR"):
                assert (face_results[latency_policy].latency.mean
                        < face_results[baseline].latency.mean)

    def test_processing_methods_fail_rate_target(self, face_results):
        # PR/PRS "fail to provide the target rate of 24 FPS".
        assert face_results["PR"].throughput < 24.0 * 0.75
        assert face_results["PRS"].throughput < 24.0 * 0.97

    def test_selection_improves_throughput(self, face_results):
        assert (face_results["PRS"].throughput
                > face_results["PR"].throughput)

    def test_selection_reduces_latency_variance(self, face_results):
        assert (face_results["PRS"].latency.variance
                < face_results["PR"].latency.variance)

    def test_rr_worst_throughput(self, face_results):
        rr = face_results["RR"].throughput
        assert all(face_results[p].throughput >= rr * 0.9
                   for p in ("LR", "PRS", "LRS"))

    def test_same_ordering_for_translation(self, translation_results):
        results = translation_results
        assert results["LRS"].throughput > results["RR"].throughput * 1.5
        assert results["LRS"].latency.mean < results["RR"].latency.mean


class TestResourceUsage:
    """Fig. 5: where the data goes under each policy."""

    def test_rr_distributes_equally(self, face_results):
        rates = face_results["RR"].input_rates()
        values = list(rates.values())
        assert max(values) - min(values) < 0.5

    def test_lrs_minimizes_weak_signal_devices(self, face_results):
        rates = face_results["LRS"].input_rates()
        weak = (rates["B"] + rates["C"] + rates["D"]) / 3
        strong = (rates["G"] + rates["H"] + rates["I"]) / 3
        assert weak < strong / 2.5

    def test_lrs_avoids_stragglers(self, face_results):
        rates = face_results["LRS"].input_rates()
        assert rates["E"] < rates["H"] / 2

    def test_weak_devices_have_low_cpu_use_under_lrs(self, face_results):
        cpu = face_results["LRS"].cpu_utilization()
        assert cpu["B"] < 0.35


class TestEnergy:
    """Figs. 6-7: power and efficiency."""

    def test_all_policies_report_positive_power(self, face_results):
        for result in face_results.values():
            assert result.energy.aggregate_w > 0.5

    def test_selection_improves_energy_efficiency(self, face_results):
        assert (face_results["PRS"].fps_per_watt()
                > face_results["PR"].fps_per_watt())

    def test_lrs_efficiency_beats_rr(self, face_results):
        assert (face_results["LRS"].fps_per_watt()
                > face_results["RR"].fps_per_watt())

    def test_prs_power_below_lrs(self, face_results):
        # Paper: PRS consumes minimum power; LRS the highest.
        assert (face_results["PRS"].energy.aggregate_w
                < face_results["LRS"].energy.aggregate_w)


class TestReorderingClaims:
    """Fig. 8: LRS produces the smoothest playback."""

    def test_lrs_playback_monotonic(self, face_results):
        assert face_results["LRS"].reorder.is_monotonic()

    def test_lrs_skips_fewer_frames_than_rr(self, face_results):
        lrs_skipped = face_results["LRS"].reorder.total_skipped()
        rr_skipped = face_results["RR"].reorder.total_skipped()
        assert lrs_skipped < rr_skipped


class TestPaperDuration:
    """The paper's sessions run ~10 minutes; at that horizon our ratios
    land almost exactly on the reported 2.7x / 6.7x."""

    @pytest.fixture(scope="class")
    def long_runs(self):
        rr = run_swarm(scenarios.testbed(app=FACE_APP, policy="RR",
                                         duration=600.0))
        lrs = run_swarm(scenarios.testbed(app=FACE_APP, policy="LRS",
                                          duration=600.0))
        return rr, lrs

    def test_throughput_ratio_matches_paper(self, long_runs):
        rr, lrs = long_runs
        assert lrs.throughput / rr.throughput == pytest.approx(2.7, abs=0.5)

    def test_latency_ratio_matches_paper(self, long_runs):
        rr, lrs = long_runs
        ratio = rr.latency.mean / lrs.latency.mean
        assert ratio == pytest.approx(6.7, abs=2.5)

    def test_stable_over_ten_minutes(self, long_runs):
        _rr, lrs = long_runs
        series = lrs.throughput_series(bin_width=30.0)
        # No long-run degradation: brief re-selection dips happen, but
        # every 30-second window stays productive and the second half of
        # the run is as fast as the first.
        assert min(series) > 15.0
        half = len(series) // 2
        first = sum(series[:half]) / half
        second = sum(series[half:]) / (len(series) - half)
        assert second > first * 0.9
