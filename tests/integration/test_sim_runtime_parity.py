"""Sim/real parity: one recorded trace, two substrates, identical policy.

The tentpole guarantee of the shared control plane: the discrete-event
simulator and the threaded runtime are *adapters* over the same
:class:`~repro.core.controller.LrsController`, so replaying one
tuple+ACK trace through both must yield byte-identical policy behavior —
the same per-tuple routing choices, the same update-round decisions
(selected set, routing weights, probe flags, bit-for-bit float equality),
the same loss accounting, dead-marks and resurrections.

The trace exercises the whole control loop: 25 fps arrivals over three
downstreams, one of which goes silent mid-run (its in-flight tuples
expire, it is marked dead after ``dead_after`` expiry rounds) and later
recovers (a probe's ACK resurrects it).  All event timestamps are
distinct by construction, so event order is deterministic on both
substrates.
"""

import heapq

from repro import metrics as metrics_mod
from repro.core.controller import PolicyConfig
from repro.core.tuples import DataTuple
from repro.runtime.dispatcher import UpstreamDispatcher
from repro.simulation.control import engine_controller
from repro.simulation.engine import Simulator

DOWNSTREAMS = ("det@B", "det@C", "det@D")
#: per-downstream ACK echo delay, chosen so no two trace events collide
ACK_DELAY = {"det@B": 0.071, "det@C": 0.173, "det@D": 0.059}
PROCESSING_DELAY = {"det@B": 0.031, "det@C": 0.083, "det@D": 0.027}
DURATION = 12.0
FRAME_GAP = 0.04  # 25 fps
ARRIVAL_OFFSET = 0.013
#: det@D answers nothing for tuples SENT inside this window
SILENT_FROM, SILENT_UNTIL = 4.2, 7.7

#: a tight ACK timeout + threshold so the silence is detected mid-trace
CONFIG = PolicyConfig(policy="LRS", seed=7, ack_timeout=0.5, dead_after=2,
                      control_interval=1e9)  # updates driven explicitly


def _arrival_times():
    return [FRAME_GAP * i + ARRIVAL_OFFSET
            for i in range(int(DURATION / FRAME_GAP))
            if FRAME_GAP * i + ARRIVAL_OFFSET < DURATION]


def _tick_times():
    return [float(tick) for tick in range(1, int(DURATION) + 1)]


def _silent(downstream_id, sent_at):
    return (downstream_id == "det@D"
            and SILENT_FROM <= sent_at < SILENT_UNTIL)


def _canonical_decisions(decisions):
    return [(when, tuple(sorted(decision.selected)),
             tuple(sorted(decision.weights.items())), decision.probing)
            for when, decision in decisions]


def _counter_views(registry):
    views = {}
    for name in (metrics_mod.SENT_TOTAL, metrics_mod.ACKED_TOTAL,
                 metrics_mod.LOST_TOTAL, metrics_mod.MARKED_DEAD_TOTAL,
                 metrics_mod.RESURRECTED_TOTAL):
        views[name] = registry.values_by_label(name, "downstream")
    views[metrics_mod.POLICY_UPDATES_TOTAL] = registry.values_by_label(
        metrics_mod.POLICY_UPDATES_TOTAL, "edge")
    return views


class _Trace:
    """One substrate's observable policy behavior on the shared trace."""

    def __init__(self, choices, decisions, counters, dead):
        self.choices = choices
        self.decisions = decisions
        self.counters = counters
        self.dead = dead


def _run_runtime_side():
    """Replay the trace through the real UpstreamDispatcher.

    A heapq mini event loop stands in for the threads: arrivals and
    policy ticks are seeded up front, ACK echoes are pushed as tuples
    are dispatched.  The fabric send always succeeds instantly.
    """

    class FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    registry = metrics_mod.MetricsRegistry()
    dispatcher = UpstreamDispatcher("det", send=lambda target, message: None,
                                    clock=clock, registry=registry,
                                    config=CONFIG)
    dispatcher.set_downstreams(DOWNSTREAMS)

    events = []
    order = 0
    for when in _arrival_times():
        heapq.heappush(events, (when, order, "tuple", None))
        order += 1
    for when in _tick_times():
        heapq.heappush(events, (when, order, "tick", None))
        order += 1

    choices = []
    seq = 0
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if now > DURATION:  # the engine side stops at run(DURATION) too
            break
        clock.now = now
        if kind == "tuple":
            data = DataTuple(values={"frame": seq}, seq=seq, created_at=now)
            seq += 1
            chosen = dispatcher.dispatch(data)
            choices.append(chosen)
            if chosen is not None and not _silent(chosen, now):
                heapq.heappush(events,
                               (now + ACK_DELAY[chosen], order, "ack",
                                (data.seq, PROCESSING_DELAY[chosen])))
                order += 1
        elif kind == "ack":
            ack_seq, processing_delay = payload
            dispatcher.on_ack(ack_seq, processing_delay)
        else:
            dispatcher.force_update()

    return _Trace(choices, _canonical_decisions(dispatcher.controller.decisions),
                  _counter_views(registry),
                  dispatcher.controller.dead_downstreams())


def _run_sim_side():
    """Replay the trace through the engine adapter on a bare Simulator."""
    sim = Simulator()
    registry = metrics_mod.MetricsRegistry()
    controller = engine_controller(sim, CONFIG, registry=registry,
                                   name="det")
    controller.set_downstreams(DOWNSTREAMS)

    choices = []
    state = {"seq": 0}

    def _arrive():
        seq = state["seq"]
        state["seq"] += 1
        now = sim.now
        controller.observe_arrival(now)
        chosen = controller.dispatch(seq)
        choices.append(chosen)
        if chosen is not None and not _silent(chosen, now):
            sim.schedule(ACK_DELAY[chosen],
                         lambda chosen=chosen, seq=seq:
                         controller.on_ack(
                             seq,
                             processing_delay=PROCESSING_DELAY[chosen],
                             now=sim.now))

    for when in _arrival_times():
        sim.schedule(when, _arrive)
    for when in _tick_times():
        sim.schedule(when, lambda: controller.update(sim.now))
    sim.run(DURATION)

    return _Trace(choices, _canonical_decisions(controller.decisions),
                  _counter_views(registry), controller.dead_downstreams())


class TestSimRuntimeParity:
    def test_trace_event_times_are_unique(self):
        # The parity contract leans on deterministic event ordering.
        times = list(_arrival_times()) + list(_tick_times())
        for arrival in _arrival_times():
            for delay in ACK_DELAY.values():
                times.append(arrival + delay)
        assert len(times) == len(set(times))

    def test_trace_exercises_failure_detection(self):
        # Guard against the trace silently degenerating: the silent
        # window must actually kill det@D and probing must revive it.
        trace = _run_sim_side()
        assert trace.counters[metrics_mod.MARKED_DEAD_TOTAL] == {"det@D": 1}
        assert trace.counters[metrics_mod.RESURRECTED_TOTAL] == {"det@D": 1}
        assert trace.counters[metrics_mod.LOST_TOTAL].get("det@D", 0) > 0
        assert trace.dead == []  # resurrected before the run ended

    def test_both_substrates_make_identical_policy_decisions(self):
        runtime = _run_runtime_side()
        sim = _run_sim_side()
        assert runtime.choices == sim.choices
        assert runtime.decisions == sim.decisions  # exact float equality
        assert runtime.counters == sim.counters
        assert runtime.dead == sim.dead
