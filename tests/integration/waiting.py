"""Bounded condition-waits shared by the integration suite.

A fixed ``time.sleep(X)`` is either too short (flaky under load) or too
long (slow for everyone, always).  These helpers poll a condition with
a hard deadline instead: they return as soon as the condition holds and
fail loudly when it never does.  Sleeps that *shape the scenario*
(simulated service time, a deliberate outage duration) are not waits
and stay as plain sleeps.
"""

import time


def wait_until(predicate, timeout=10.0, poll=0.02, message="condition"):
    """Poll *predicate* until it returns a truthy value.

    Returns that value; raises ``AssertionError`` naming *message* when
    *timeout* seconds pass first.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError("timed out after %.1fs waiting for %s"
                                 % (timeout, message))
        time.sleep(poll)


def wait_quiescent(sample, quiet=0.3, timeout=10.0, poll=0.05):
    """Wait until *sample()* stops changing for *quiet* seconds.

    The bounded replacement for "sleep a bit so stragglers land":
    returns the settled value once it has held still for *quiet*
    seconds, or whatever it last was when *timeout* expires (quiescence
    is an optimisation for the assertion that follows, not itself a
    guarantee — the caller's assertion stays the arbiter).
    """
    deadline = time.monotonic() + timeout
    last = sample()
    settled_at = time.monotonic()
    while time.monotonic() < deadline:
        if time.monotonic() - settled_at >= quiet:
            return last
        time.sleep(poll)
        current = sample()
        if current != last:
            last = current
            settled_at = time.monotonic()
    return last
