"""Cross-validation: the threaded runtime and the simulator must agree.

The same policy objects drive both worlds; here we put the *same
qualitative scenario* — one slow device, one fast device — through both
the real threaded runtime (wall-clock time, real ACK messages) and the
discrete-event simulator (virtual time), and check that the resource
manager reaches the same verdicts in each.
"""

import pytest

from repro import profiles
from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime.app_runner import SwingRuntime
from repro.simulation.swarm import SwarmConfig, run_swarm
from repro.simulation.workload import face_workload


def runtime_shares(policy, items=120):
    """Work split between a fast and a 40x-slower worker (threads)."""
    graph = (GraphBuilder("xval")
             .source("src", lambda: IterableSource(
                 [{"x": i} for i in range(items)]))
             .unit("f", lambda: LambdaUnit(lambda v: {"y": v["x"]}))
             .sink("snk", CollectingSink)
             .chain("src", "f", "snk")
             .build())
    runtime = SwingRuntime(graph, worker_ids=["fast", "slow"], policy=policy,
                           source_rate=250.0, slowdowns={"slow": 400.0},
                           seed=3)
    runtime.run(until_idle=0.6, timeout=60.0)
    return {worker_id: worker.processed_count
            for worker_id, worker in runtime.workers.items()}


def simulator_shares(policy):
    """Work split between fast H and slow E in the simulator."""
    config = SwarmConfig(workload=face_workload(input_rate=12.0),
                         workers=profiles.worker_profiles(["E", "H"]),
                         source=profiles.device_profile("A"),
                         policy=policy, duration=20.0, seed=3)
    result = run_swarm(config)
    rates = result.input_rates()
    return {"fast": rates["H"], "slow": rates["E"]}


class TestCrossValidation:
    def test_rr_splits_evenly_in_both_worlds(self):
        threads = runtime_shares("RR")
        simulated = simulator_shares("RR")
        # RR ignores capability everywhere: shares within 25% of equal.
        assert threads["fast"] == pytest.approx(threads["slow"], rel=0.25)
        assert simulated["fast"] == pytest.approx(simulated["slow"],
                                                  rel=0.25)

    def test_lrs_prefers_fast_device_in_both_worlds(self):
        threads = runtime_shares("LRS")
        simulated = simulator_shares("LRS")
        assert threads["fast"] > 1.5 * max(1, threads["slow"])
        assert simulated["fast"] > 1.5 * max(0.1, simulated["slow"])

    def test_lrs_beats_rr_in_both_worlds(self):
        # In each world, the fast device's share under LRS exceeds its
        # share under RR — the adaptation direction matches.
        threads_rr = runtime_shares("RR")
        threads_lrs = runtime_shares("LRS")
        fraction = lambda shares: (shares["fast"]
                                   / max(1e-9, shares["fast"]
                                         + shares["slow"]))
        assert fraction(threads_lrs) > fraction(threads_rr)
        sim_rr = simulator_shares("RR")
        sim_lrs = simulator_shares("LRS")
        assert fraction(sim_lrs) > fraction(sim_rr)
