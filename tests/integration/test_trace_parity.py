"""Measured (span) vs analytic (FrameRecord) delay decomposition parity.

The simulator keeps analytic per-frame timestamps (``FrameRecord``) and,
when tracing is on, also *measures* the same intervals by emitting spans
at each hop.  The two decompositions must agree: a drift means a span is
anchored at the wrong event.  The runtime half is a smoke test — wall
times there are nondeterministic, so it asserts span presence and shape
rather than exact values.
"""

import dataclasses

import pytest

from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime.app_runner import SwingRuntime
from repro.trace import (ACK_RTT, COMPONENTS, PROCESS, QUEUE_WAIT, SERIALIZE,
                         TRANSMIT, Tracer, delay_decomposition,
                         spans_by_tuple, to_chrome_trace,
                         validate_chrome_trace)
from repro.simulation.scenarios import single_device
from repro.simulation.swarm import run_swarm

#: ISSUE acceptance bound: per-component relative tolerance
TOLERANCE = 0.15


def traced_run(sample_rate, duration=20.0, seed=0):
    config = dataclasses.replace(single_device("B", duration=duration,
                                               seed=seed),
                                 trace_sample_rate=sample_rate)
    return run_swarm(config)


def assert_parity(measured, analytic):
    for component in COMPONENTS:
        expected = analytic[component]
        got = measured[component]
        if expected <= 1e-9:
            assert got == pytest.approx(0.0, abs=1e-6), component
        else:
            assert abs(got - expected) / expected <= TOLERANCE, (
                "%s: measured %.6f vs analytic %.6f"
                % (component, got, expected))


class TestSimulatorParity:
    def test_full_sampling_matches_analytic_decomposition(self):
        result = traced_run(sample_rate=1.0)
        assert result.trace, "tracing produced no spans"
        measured = delay_decomposition(result.trace)
        assert_parity(measured, result.metrics.delay_decomposition())

    def test_half_sampling_stays_within_tolerance(self):
        # Sampling halves the population but the per-tuple intervals are
        # unbiased, so the component means stay inside the bound.
        result = traced_run(sample_rate=0.5)
        measured = delay_decomposition(result.trace)
        assert_parity(measured, result.metrics.delay_decomposition())

    def test_sampling_decision_is_per_tuple(self):
        full = traced_run(sample_rate=1.0, duration=10.0)
        half = traced_run(sample_rate=0.5, duration=10.0)
        full_ids = set(spans_by_tuple(full.trace))
        half_ids = set(spans_by_tuple(half.trace))
        assert half_ids < full_ids
        # Every sampled tuple is traced end-to-end, not per-span.
        kinds_by_tuple = {seq: {span.kind for span in spans}
                          for seq, spans in spans_by_tuple(half.trace).items()}
        completed = [kinds for kinds in kinds_by_tuple.values()
                     if PROCESS in kinds]
        assert completed
        assert all(QUEUE_WAIT in kinds and TRANSMIT in kinds
                   for kinds in completed)

    def test_chrome_export_of_sim_trace_validates(self):
        result = traced_run(sample_rate=1.0, duration=5.0)
        events = validate_chrome_trace(to_chrome_trace(result.trace))
        assert events
        assert all(event["dur"] >= 0.0 and event["ts"] >= 0.0
                   for event in events)

    def test_tracing_off_by_default(self):
        result = run_swarm(single_device("B", duration=2.0))
        assert result.trace == []


class TestRuntimeTracing:
    def test_traced_runtime_emits_every_hop_kind(self):
        graph = (GraphBuilder("traced")
                 .source("src", lambda: IterableSource(
                     [{"x": i} for i in range(20)]))
                 .unit("double", lambda: LambdaUnit(
                     lambda values: {"y": values["x"] * 2}))
                 .sink("snk", CollectingSink)
                 .chain("src", "double", "snk")
                 .build())
        tracer = Tracer(sample_rate=1.0, seed=0)
        runtime = SwingRuntime(graph, worker_ids=["B", "C"],
                               source_rate=300.0, trace=tracer)
        results = runtime.run(until_idle=0.5, timeout=30.0)
        assert len(results) == 20

        spans = tracer.spans()
        kinds = {span.kind for span in spans}
        assert {QUEUE_WAIT, SERIALIZE, PROCESS, ACK_RTT} <= kinds
        split = delay_decomposition(spans)
        assert split["processing"] >= 0.0
        assert sum(split.values()) > 0.0
        events = validate_chrome_trace(to_chrome_trace(spans))
        assert events

    def test_untraced_runtime_emits_nothing(self):
        graph = (GraphBuilder("plain")
                 .source("src", lambda: IterableSource(
                     [{"x": i} for i in range(5)]))
                 .sink("snk", CollectingSink)
                 .chain("src", "snk")
                 .build())
        runtime = SwingRuntime(graph, worker_ids=["B"], source_rate=300.0)
        results = runtime.run(until_idle=0.4, timeout=30.0)
        assert len(results) == 5
        assert runtime.tracer.spans() == []
