"""Acceptance tests for keyed stateful operators (ISSUE 9).

Two halves, mirroring the two substrates:

* **Simulator** — the Zipf(1.2) skew scenario on four workers: static
  hash routing collapses (the hot range's owner saturates and
  socket-window backpressure stalls the whole dispatch loop), while
  hot-range splitting recovers the SLO-bounded throughput, and every
  mid-run split/migration is lossless under at-least-once delivery.
* **Threaded runtime** — a real keyed pipeline on real threads: a
  mid-run split + state migration through ``migrate_range`` loses zero
  tuples, and the per-key state lands intact on the new owner.
"""

from collections import Counter

from repro import metrics as metrics_mod
from repro.core.delivery import AT_LEAST_ONCE, DeliveryConfig
from repro.core.function_unit import (CollectingSink, FunctionUnit,
                                      SourceUnit)
from repro.core.graph import GraphBuilder
from repro.core.keyed import KeyedConfig, hash_key
from repro.core.tuples import DataTuple, TupleSchema
from repro.runtime.app_runner import SwingRuntime
from repro.runtime.dispatcher import instance_id
from repro.runtime.migration import migrate_range
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

from tests.integration.waiting import wait_until

# -- simulator half ------------------------------------------------------

_DURATION = 40.0
_BOUND = 1.0  # p99-style SLO: completions within 1 s end-to-end
_WARMUP = 5.0
_RESULTS = {}


def _skew_result(split_enabled):
    """One sim run per variant, shared across the assertions below."""
    if split_enabled not in _RESULTS:
        _RESULTS[split_enabled] = run_swarm(scenarios.skew(
            duration=_DURATION, input_rate=16.0,
            split_enabled=split_enabled))
    return _RESULTS[split_enabled]


class TestSimSkewAcceptance:
    def test_static_routing_saturates_hot_owner(self):
        static = _skew_result(split_enabled=False)
        assert static.key_splits == 0
        # the hot range's owner is overloaded: almost nothing meets the
        # bound once queues build up
        assert static.bounded_throughput(_BOUND, warmup=_WARMUP) < 8.0

    def test_splitting_recovers_bounded_throughput_1_5x(self):
        static = _skew_result(split_enabled=False)
        split = _skew_result(split_enabled=True)
        recovered = split.bounded_throughput(_BOUND, warmup=_WARMUP)
        baseline = static.bounded_throughput(_BOUND, warmup=_WARMUP)
        assert split.key_splits >= 1, "hot-range detector never fired"
        assert recovered >= 1.5 * max(baseline, 0.1), (
            "splitting recovered %.2f FPS vs static %.2f FPS"
            % (recovered, baseline))

    def test_migrations_are_lossless(self):
        split = _skew_result(split_enabled=True)
        assert split.key_moves_by_reason.get("hot_split", 0) >= 1
        # judge only frames old enough for any redelivery to have landed
        assert split.end_to_end_losses(_DURATION - 10.0) == []

    def test_hot_ranges_counted(self):
        split = _skew_result(split_enabled=True)
        assert split.hot_ranges_detected >= 1


# -- threaded-runtime half -----------------------------------------------

_KEYED_SCHEMA = TupleSchema.of("user", "n")
_TUPLE_COUNT = 400
_KEY_COUNT = 8


class _KeyedSource(SourceUnit):
    """Seq-stamped keyed tuples cycling over a fixed user population."""

    def __init__(self):
        super().__init__()
        self._seq = 0

    def generate(self):
        if self._seq >= _TUPLE_COUNT:
            return None
        seq = self._seq
        self._seq += 1
        user = "user-%d" % (seq % _KEY_COUNT)
        return DataTuple(values={"user": user, "n": seq}, seq=seq,
                         schema=_KEYED_SCHEMA,
                         created_at=self.context.now(), key=user)


class _CountingUnit(FunctionUnit):
    """Stateful pass-through: counts per key, forwards every tuple."""

    stateful = True

    def process_data(self, data):
        user = data.get_value("user")
        state = self.context.state.load(user) or {"count": 0}
        state["count"] += 1
        self.context.state.store(user, state)
        self.send(data)


def _build_keyed_graph():
    return (GraphBuilder("keyed-count")
            .source("feed", _KeyedSource, output_schema=_KEYED_SCHEMA)
            .unit("count", _CountingUnit, output_schema=_KEYED_SCHEMA)
            .sink("collect", CollectingSink)
            .chain("feed", "count", "collect")
            .build())


class TestRuntimeSplitMigration:
    def test_mid_run_split_and_migration_lose_zero_tuples(self):
        registry = metrics_mod.MetricsRegistry()
        runtime = SwingRuntime(
            _build_keyed_graph(), worker_ids=["B", "C"], master_id="A",
            policy="RR", source_rate=200.0, seed=3, registry=registry,
            delivery=DeliveryConfig(mode=AT_LEAST_ONCE,
                                    replay_capacity=4096,
                                    dedup_window=8192,
                                    max_delivery_attempts=8),
            keyed=KeyedConfig(key_count=_KEY_COUNT, split_enabled=False))
        runtime.start()
        try:
            dispatcher = runtime.master.runtime.dispatcher("feed", "count")
            table = dispatcher.controller.key_table
            assert table is not None
            sink = runtime.sink_unit()
            wait_until(lambda: len(sink.results) >= 20,
                       message="the stream reaching steady state")
            owner_b = instance_id("count", "B")
            whole = table.ranges_owned_by(owner_b)[0]
            # the load-driven shape: split B's range, migrate the upper
            # half (state included) to C while the source keeps emitting
            _, upper = dispatcher.controller.split_range(whole)
            moved = migrate_range(
                dispatcher, upper, runtime.workers["B"],
                runtime.workers["C"], instance_id("count", "C"), "count",
                reason="hot_split", registry=registry)
            assert table.owner(upper) == instance_id("count", "C")
            # zero loss: every sequence reaches the sink exactly once
            expected = set(range(_TUPLE_COUNT))
            wait_until(
                lambda: {data.seq for data in sink.results} >= expected,
                timeout=60.0, poll=0.1,
                message="the full stream surviving the migration")
            seen = [data.seq for data in sink.results]
            missing = expected - set(seen)
            assert not missing, "lost %d tuples across the migration: %s" \
                % (len(missing), sorted(missing)[:10])
            duplicates = [seq for seq, cnt in Counter(seen).items()
                          if cnt > 1]
            assert not duplicates, "sink dedup let duplicates through"
            # state landed intact: the migrated keys live on C only, and
            # per-key counts across both stores cover every tuple
            store_b = runtime.workers["B"].state_store("count")
            store_c = runtime.workers["C"].state_store("count")
            migrated = {key for key in store_c.keys()
                        if upper.contains(hash_key(key))}
            assert any(upper.contains(hash_key("user-%d" % i))
                       for i in range(_KEY_COUNT)), "split range held no key"
            assert migrated, "no migrated state on the new owner"
            assert not any(upper.contains(hash_key(key))
                           for key in store_b.keys())
            total = sum((store_b.load(key) or {"count": 0})["count"]
                        for key in store_b.keys())
            total += sum((store_c.load(key) or {"count": 0})["count"]
                        for key in store_c.keys())
            # at-least-once: every tuple counted at least once (cross-
            # worker redelivery may double-process, never lose)
            assert total >= _TUPLE_COUNT
            assert moved >= 0
            assert registry.value(metrics_mod.KEY_RANGE_MOVES_TOTAL,
                                  reason="hot_split",
                                  edge="feed>count") == 1
        finally:
            runtime.stop()
