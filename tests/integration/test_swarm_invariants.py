"""Property-based invariants of the swarm simulation.

Whatever the configuration — policy, device mix, signal map, rate —
certain things must always hold: frames are conserved, playback is
monotonic, nobody processes more than time allows, energy is positive
and bounded, and per-device accounting sums to the system totals.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import profiles
from repro.core.policies import POLICY_NAMES
from repro.simulation.network import RSSI_FAIR, RSSI_GOOD, RSSI_POOR
from repro.simulation.swarm import SwarmConfig, run_swarm
from repro.simulation.workload import face_workload

DEVICE_POOL = ["B", "C", "E", "G", "H", "I"]

config_strategy = st.builds(
    dict,
    policy=st.sampled_from(POLICY_NAMES + ["JSQ"]),
    worker_ids=st.lists(st.sampled_from(DEVICE_POOL), min_size=1,
                        max_size=4, unique=True),
    rssi_level=st.sampled_from([RSSI_GOOD, RSSI_FAIR, RSSI_POOR]),
    input_rate=st.floats(min_value=2.0, max_value=30.0),
    seed=st.integers(min_value=0, max_value=50),
)


def build_config(params):
    worker_ids = params["worker_ids"]
    rssi = {worker_ids[0]: params["rssi_level"]}  # first device varies
    return SwarmConfig(
        workload=face_workload(input_rate=params["input_rate"]),
        workers=profiles.worker_profiles(worker_ids),
        source=profiles.device_profile("A"),
        policy=params["policy"],
        duration=6.0,
        seed=params["seed"],
        rssi=rssi,
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=config_strategy)
def test_swarm_invariants(params):
    config = build_config(params)
    result = run_swarm(config)
    metrics = result.metrics
    duration = config.duration

    completed = len(metrics.completed_frames())
    lost = metrics.loss_count()
    # Conservation: completed + lost + in-flight == generated.
    in_flight = metrics.generated - completed - lost
    assert in_flight >= 0
    assert completed + lost <= metrics.generated

    # Throughput is bounded by the offered rate.
    assert result.throughput <= config.workload.input_rate * 1.05

    # Playback through the reorder buffer is strictly monotonic.
    assert result.reorder.is_monotonic()

    # Nobody computes more than wall-clock allows (one in-progress
    # service time of slack: busy time is committed at service start).
    for device_id, counters in metrics.devices.items():
        assert counters.busy_time <= duration + 1.5
        assert counters.frames_completed <= counters.frames_received

    # Per-device receive counts sum to at least the completions.
    received = sum(counters.frames_received
                   for counters in metrics.devices.values())
    assert received >= completed

    # Latency statistics are sane when present.
    if result.latency is not None:
        assert 0.0 < result.latency.minimum <= result.latency.mean \
            <= result.latency.maximum
        assert result.latency.variance >= 0.0

    # Energy accounting: non-negative, bounded by every device at peak.
    assert result.energy.aggregate_w >= 0.0
    peak = sum(profile.power.peak_cpu_w + profile.power.peak_wifi_w
               for profile in config.workers.values())
    assert result.energy.aggregate_w <= peak + 1e-9
