"""Tests for workload definitions."""

import itertools
import random

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.workload import (FACE_APP, FACE_FRAME_BYTES,
                                       TRANSLATE_APP, TRANSLATE_FRAME_BYTES,
                                       Workload, face_workload,
                                       translation_workload)


class TestWorkloadDefinitions:
    def test_face_matches_paper(self):
        workload = face_workload()
        assert workload.app == FACE_APP
        assert workload.frame_bytes == 6_000   # 6.0 kB (paper Sec. VI-A)
        assert workload.input_rate == 24.0     # smooth-video target

    def test_translation_matches_paper_frame_size(self):
        workload = translation_workload()
        assert workload.app == TRANSLATE_APP
        assert workload.frame_bytes == 72_000  # 72.0 kB (paper Sec. VI-A)

    def test_frame_interval(self):
        assert face_workload(input_rate=10.0).frame_interval == 0.1

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            Workload(app="x", frame_bytes=0, input_rate=1.0)
        with pytest.raises(SimulationError):
            Workload(app="x", frame_bytes=1, input_rate=0.0)
        with pytest.raises(SimulationError):
            Workload(app="x", frame_bytes=1, input_rate=1.0,
                     arrival="bursty")


class TestArrivalProcesses:
    def test_deterministic_gaps_constant(self):
        workload = face_workload(input_rate=24.0)
        gaps = list(itertools.islice(workload.interarrival_times(), 10))
        assert all(gap == pytest.approx(1.0 / 24.0) for gap in gaps)

    def test_poisson_gaps_average_to_rate(self):
        workload = face_workload(input_rate=20.0, arrival="poisson")
        rng = random.Random(42)
        gaps = list(itertools.islice(workload.interarrival_times(rng), 4000))
        assert sum(gaps) / len(gaps) == pytest.approx(1.0 / 20.0, rel=0.1)

    def test_poisson_gaps_vary(self):
        workload = face_workload(arrival="poisson")
        rng = random.Random(1)
        gaps = list(itertools.islice(workload.interarrival_times(rng), 10))
        assert len(set(gaps)) > 1
