"""Tests for metrics collection and aggregation."""

import pytest

from repro.simulation.metrics import (DROP_SOURCE_QUEUE, FrameRecord,
                                      LatencyStats, MetricsCollector)


def completed_frame(metrics, seq, device, created, arrived,
                    tx=(None, None), proc=(None, None)):
    record = metrics.frame(seq, created)
    record.device_id = device
    record.tx_started_at, record.tx_finished_at = tx
    record.proc_started_at, record.proc_finished_at = proc
    record.sink_arrived_at = arrived
    return record


class TestFrameRecord:
    def test_delay_decomposition(self):
        record = FrameRecord(seq=0, created_at=0.0, tx_started_at=0.1,
                             tx_finished_at=0.3, proc_started_at=0.5,
                             proc_finished_at=0.9, sink_arrived_at=1.0)
        assert record.source_queue_delay == pytest.approx(0.1)
        assert record.transmission_delay == pytest.approx(0.2)
        assert record.queuing_delay == pytest.approx(0.2)
        assert record.processing_delay == pytest.approx(0.4)
        assert record.total_delay == pytest.approx(1.0)

    def test_incomplete_frame_has_none_delays(self):
        record = FrameRecord(seq=0, created_at=0.0)
        assert record.total_delay is None
        assert record.transmission_delay is None
        assert not record.completed

    def test_dropped_frame_not_completed(self):
        record = FrameRecord(seq=0, created_at=0.0, sink_arrived_at=1.0,
                             dropped="reason")
        assert not record.completed


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.variance == pytest.approx(2.0 / 3.0)
        assert stats.stddev == pytest.approx((2.0 / 3.0) ** 0.5)
        assert stats.count == 3

    def test_empty_returns_none(self):
        assert LatencyStats.from_samples([]) is None


class TestMetricsCollector:
    def test_frame_idempotent(self):
        metrics = MetricsCollector()
        first = metrics.frame(1, 0.0)
        second = metrics.frame(1, 99.0)
        assert first is second
        assert metrics.generated == 1

    def test_throughput_counts_completed(self):
        metrics = MetricsCollector()
        completed_frame(metrics, 0, "B", 0.0, 1.0)
        completed_frame(metrics, 1, "B", 0.5, 1.5)
        metrics.frame(2, 1.0)  # never completes
        assert metrics.throughput(duration=10.0) == pytest.approx(0.2)

    def test_drop_tracking(self):
        metrics = MetricsCollector()
        metrics.frame(0, 0.0)
        metrics.drop(0, DROP_SOURCE_QUEUE)
        assert metrics.loss_count() == 1
        assert metrics.dropped[DROP_SOURCE_QUEUE] == 1
        assert not metrics.frames[0].completed

    def test_latency_stats_over_completed(self):
        metrics = MetricsCollector()
        completed_frame(metrics, 0, "B", 0.0, 1.0)
        completed_frame(metrics, 1, "B", 0.0, 3.0)
        stats = metrics.latency_stats()
        assert stats.mean == pytest.approx(2.0)
        assert stats.count == 2

    def test_per_device_input_rate(self):
        metrics = MetricsCollector()
        metrics.device("B").frames_received = 20
        metrics.device("C").frames_received = 10
        rates = metrics.per_device_input_rate(duration=10.0)
        assert rates == {"B": 2.0, "C": 1.0}

    def test_cpu_utilization_with_overhead(self):
        metrics = MetricsCollector()
        counters = metrics.device("B")
        counters.busy_time = 5.0
        counters.participating_time = 10.0
        utilization = metrics.per_device_cpu_utilization(
            duration=10.0, overheads={"B": 0.1})
        assert utilization["B"] == pytest.approx(0.6)

    def test_cpu_utilization_clamped(self):
        metrics = MetricsCollector()
        metrics.device("B").busy_time = 50.0
        utilization = metrics.per_device_cpu_utilization(duration=10.0)
        assert utilization["B"] == 1.0

    def test_throughput_series_bins(self):
        metrics = MetricsCollector()
        completed_frame(metrics, 0, "B", 0.0, 0.5)
        completed_frame(metrics, 1, "B", 0.0, 0.7)
        completed_frame(metrics, 2, "B", 0.0, 1.5)
        series = metrics.throughput_series(duration=2.0, bin_width=1.0)
        assert series == [2.0, 1.0]

    def test_per_device_throughput_series(self):
        metrics = MetricsCollector()
        metrics.device("B")
        metrics.device("C")
        completed_frame(metrics, 0, "B", 0.0, 0.5)
        completed_frame(metrics, 1, "C", 0.0, 1.5)
        series = metrics.per_device_throughput_series(duration=2.0)
        assert series["B"] == [1.0, 0.0]
        assert series["C"] == [0.0, 1.0]

    def test_arrival_order_sorted_by_sink_time(self):
        metrics = MetricsCollector()
        completed_frame(metrics, 1, "B", 0.0, 0.9)
        completed_frame(metrics, 0, "B", 0.0, 1.5)
        order = [record.seq for record in metrics.arrival_order()]
        assert order == [1, 0]

    def test_delay_decomposition_means(self):
        metrics = MetricsCollector()
        completed_frame(metrics, 0, "B", 0.0, 1.0,
                        tx=(0.0, 0.2), proc=(0.4, 0.9))
        decomposition = metrics.delay_decomposition()
        assert decomposition["transmission"] == pytest.approx(0.2)
        assert decomposition["queuing"] == pytest.approx(0.2)
        assert decomposition["processing"] == pytest.approx(0.5)

    def test_decomposition_empty(self):
        metrics = MetricsCollector()
        assert metrics.delay_decomposition() == {
            "transmission": 0.0, "queuing": 0.0, "processing": 0.0}

    def test_zero_duration_rates(self):
        metrics = MetricsCollector()
        metrics.device("B")
        assert metrics.throughput(0.0) == 0.0
        assert metrics.per_device_input_rate(0.0)["B"] == 0.0


class TestCsvExport:
    def _collector_with_frames(self):
        metrics = MetricsCollector()
        completed_frame(metrics, 0, "B", 0.0, 1.0, tx=(0.1, 0.2),
                        proc=(0.3, 0.9))
        metrics.frame(1, 0.5)
        metrics.drop(1, DROP_SOURCE_QUEUE)
        return metrics

    def test_header_and_row_count(self):
        text = self._collector_with_frames().to_csv()
        lines = text.strip().splitlines()
        assert lines[0].startswith("seq,device_id,created_at")
        assert len(lines) == 3  # header + 2 frames

    def test_values_and_empties(self):
        lines = self._collector_with_frames().to_csv().strip().splitlines()
        first = lines[1].split(",")
        assert first[0] == "0"
        assert first[1] == "B"
        assert first[8] == "1.000000"   # sink_arrived_at
        second = lines[2].split(",")
        assert second[1] == ""          # never dispatched
        assert second[10] == DROP_SOURCE_QUEUE

    def test_write_csv_roundtrip(self, tmp_path):
        metrics = self._collector_with_frames()
        path = tmp_path / "trace.csv"
        metrics.write_csv(path)
        assert path.read_text() == metrics.to_csv()

    def test_swarm_result_exports(self):
        from repro.simulation import scenarios
        from repro.simulation.swarm import run_swarm
        result = run_swarm(scenarios.testbed(policy="LRS", duration=5.0,
                                             worker_ids=["G", "H"]))
        text = result.metrics.to_csv()
        assert text.count("\n") > 50  # ~120 frames generated
