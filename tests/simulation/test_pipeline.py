"""Tests for the multi-stage pipeline simulation (Fig. 3 deployments)."""

import pytest

from repro import profiles
from repro.core.exceptions import SimulationError
from repro.simulation.network import RSSI_POOR
from repro.simulation.pipeline import (PipelineConfig, StageSpec,
                                       face_pipeline_config, run_pipeline)
from repro.simulation.workload import face_workload


class TestStageSpec:
    def test_valid(self):
        StageSpec("s", 0.5, 1000, ("B",))

    @pytest.mark.parametrize("kwargs", [
        dict(name="s", compute_fraction=0.0, output_bytes=1, hosts=("B",)),
        dict(name="s", compute_fraction=1.5, output_bytes=1, hosts=("B",)),
        dict(name="s", compute_fraction=0.5, output_bytes=0, hosts=("B",)),
        dict(name="s", compute_fraction=0.5, output_bytes=1, hosts=()),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(SimulationError):
            StageSpec(**kwargs)


class TestConfigValidation:
    def test_needs_stages(self):
        config = PipelineConfig(workload=face_workload(), stages=(),
                                devices={}, source_id="A")
        with pytest.raises(SimulationError):
            config.validate()

    def test_duplicate_stage_names_rejected(self):
        stage = StageSpec("s", 0.5, 100, ("B",))
        config = PipelineConfig(workload=face_workload(),
                                stages=(stage, stage),
                                devices=profiles.worker_profiles(["B"]),
                                source_id="A")
        with pytest.raises(SimulationError):
            config.validate()

    def test_unknown_host_rejected(self):
        config = PipelineConfig(
            workload=face_workload(),
            stages=(StageSpec("s", 0.5, 100, ("Z",)),),
            devices=profiles.worker_profiles(["B"]), source_id="A")
        with pytest.raises(SimulationError):
            config.validate()

    def test_stage_input_bytes(self):
        config = face_pipeline_config(["G"], ["H"])
        assert config.stage_input_bytes(0) == 6000   # the camera frame
        assert config.stage_input_bytes(1) == 6200   # frame + boxes


class TestExecution:
    @pytest.fixture(scope="class")
    def fast_trio(self):
        return run_pipeline(face_pipeline_config(
            ["G", "H", "I"], ["G", "H", "I"], duration=20.0, seed=1))

    def test_meets_target_rate(self, fast_trio):
        assert fast_trio.throughput > 22.0

    def test_low_latency(self, fast_trio):
        assert fast_trio.mean_latency < 0.5

    def test_playback_ordered(self, fast_trio):
        assert fast_trio.ordered

    def test_both_stages_distributed(self, fast_trio):
        detector_hosts = {instance for instance, count
                          in fast_trio.per_instance_frames.items()
                          if instance.startswith("detector@") and count > 0}
        recognizer_hosts = {instance for instance, count
                            in fast_trio.per_instance_frames.items()
                            if instance.startswith("recognizer@")
                            and count > 0}
        assert len(detector_hosts) >= 2
        assert len(recognizer_hosts) >= 2

    def test_tuple_conservation_per_stage(self, fast_trio):
        detector_in = sum(count for instance, count
                          in fast_trio.per_instance_frames.items()
                          if instance.startswith("detector@"))
        recognizer_in = sum(count for instance, count
                            in fast_trio.per_instance_frames.items()
                            if instance.startswith("recognizer@"))
        # Stage 2 receives at most what stage 1 received, and completion
        # count at most what stage 2 received.
        assert recognizer_in <= detector_in
        assert fast_trio.completed <= recognizer_in

    def test_disjoint_deployment_works(self):
        result = run_pipeline(face_pipeline_config(
            ["G", "H"], ["I", "F"], duration=20.0, seed=2))
        assert result.throughput > 18.0
        assert all(not instance.startswith("recognizer@G")
                   for instance in result.per_instance_frames)

    def test_single_stage_pipeline(self):
        config = PipelineConfig(
            workload=face_workload(input_rate=12.0),
            stages=(StageSpec("analyze", 1.0, 200, ("G", "H")),),
            devices=profiles.worker_profiles(["G", "H"]),
            source_id="A", duration=15.0, seed=0)
        result = run_pipeline(config)
        assert result.throughput > 10.0

    def test_weak_link_recognizer_avoided(self):
        result = run_pipeline(face_pipeline_config(
            ["G", "H"], ["B", "I"], duration=25.0, seed=3,
            rssi={"B": RSSI_POOR}))
        frames = result.per_instance_frames
        assert frames["recognizer@B"] < frames["recognizer@I"] / 2

    def test_shared_device_serializes_compute(self):
        # Both stages only on H: H's busy time cannot exceed wall time.
        result = run_pipeline(face_pipeline_config(
            ["H"], ["H"], duration=10.0, input_rate=24.0, seed=0))
        assert result.per_device_busy["H"] <= 10.0 + 1e-6
        # H alone cannot sustain 24 FPS through both stages.
        assert result.throughput < 20.0

    def test_reproducible(self):
        first = run_pipeline(face_pipeline_config(["G", "H"], ["I"],
                                                  duration=10.0, seed=5))
        second = run_pipeline(face_pipeline_config(["G", "H"], ["I"],
                                                   duration=10.0, seed=5))
        assert first.throughput == second.throughput
        assert first.mean_latency == second.mean_latency
