"""Tests for run-time background-load changes (paper Sec. III dynamism).

"the performance of the real-time sensing apps might be affected by ...
changes in applications running in the devices (captured by variations
in CPU usage)" — Swing must "steer frames to accommodate the reduced
computing capability when processor usage changes".
"""

import pytest

from repro import profiles
from repro.simulation.swarm import (BackgroundLoadEvent, SwarmConfig,
                                    run_swarm)
from repro.simulation.workload import face_workload


def config_with_event(policy="LRS", load=0.9, at=15.0, duration=30.0):
    return SwarmConfig(
        workload=face_workload(),
        workers=profiles.worker_profiles(["G", "H", "I"]),
        source=profiles.device_profile("A"),
        policy=policy,
        duration=duration,
        seed=2,
        background_events=(BackgroundLoadEvent(time=at, device_id="H",
                                               load=load),),
    )


class TestBackgroundLoadEvents:
    def test_loaded_device_slows_down(self):
        result = run_swarm(config_with_event(policy="RR"))
        per_device = result.metrics.per_device_throughput_series(30.0)
        before = sum(per_device["H"][5:14]) / 9
        after = sum(per_device["H"][20:29]) / 9
        # H keeps receiving an equal share under RR, but completes less.
        assert after < before

    def test_lrs_steers_frames_away_from_loaded_device(self):
        result = run_swarm(config_with_event(policy="LRS"))
        rates_series = result.metrics.per_device_throughput_series(30.0)
        h_before = sum(rates_series["H"][5:14]) / 9
        h_after = sum(rates_series["H"][20:29]) / 9
        g_before = sum(rates_series["G"][5:14]) / 9
        g_after = sum(rates_series["G"][20:29]) / 9
        assert h_after < h_before * 0.75   # H sheds load
        assert g_after > g_before          # G absorbs it

    def test_overall_throughput_recovers_under_lrs(self):
        result = run_swarm(config_with_event(policy="LRS", duration=40.0))
        series = result.throughput_series()
        late = sum(series[30:39]) / 9
        assert late >= 18.0

    def test_load_can_be_lifted_again(self):
        config = config_with_event(policy="LRS", duration=40.0)
        config.background_events = (
            BackgroundLoadEvent(time=10.0, device_id="H", load=0.9),
            BackgroundLoadEvent(time=25.0, device_id="H", load=0.0),
        )
        result = run_swarm(config)
        per_device = result.metrics.per_device_throughput_series(40.0)
        loaded = sum(per_device["H"][15:24]) / 9
        recovered = sum(per_device["H"][32:39]) / 7
        assert recovered > loaded

    def test_event_for_unknown_device_ignored(self):
        config = config_with_event()
        config.background_events = (
            BackgroundLoadEvent(time=5.0, device_id="Z", load=0.5),)
        result = run_swarm(config)  # must not raise
        assert result.throughput > 20.0
