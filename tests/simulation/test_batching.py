"""Simulator-side coverage for the batched data plane.

The simulator consumes the same :class:`BatchConfig` as the threaded
runtime, so two properties must hold: batch size 1 is a byte-for-byte
no-op (identical routing decisions and delivered frames as an unbatched
run), and real batching still meets the workload's input rate while the
shared ``swing_batch_size`` histogram records multi-tuple batches.
"""

from repro import profiles
from repro.core.batching import BatchConfig
from repro.metrics import BATCH_SIZE
from repro.simulation.swarm import SwarmConfig, run_swarm
from repro.simulation.workload import face_workload


def small_config(**overrides):
    defaults = dict(
        workload=face_workload(),
        workers=profiles.worker_profiles(["G", "H", "I"]),
        source=profiles.device_profile("A"),
        policy="LRS",
        duration=10.0,
        seed=1,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


def batch_size_histograms(result):
    return [h for h in result.registry.histograms() if h.name == BATCH_SIZE]


class TestBatchSizeOneParity:
    """max_tuples=1 must be indistinguishable from no batching at all."""

    def test_identical_decisions_and_delivery(self):
        base = run_swarm(small_config())
        batched = run_swarm(small_config(
            batching=BatchConfig(max_tuples=1)))
        assert batched.throughput == base.throughput
        assert batched.frames_lost == base.frames_lost
        assert batched.decisions == base.decisions

    def test_size_one_batches_not_counted_as_batched_dispatch(self):
        result = run_swarm(small_config(
            batching=BatchConfig(max_tuples=1)))
        # The batch path is never entered, so no histogram is created.
        assert batch_size_histograms(result) == []


class TestBatchedRun:
    def test_batched_run_keeps_up_with_the_source(self):
        base = run_swarm(small_config())
        batched = run_swarm(small_config(
            batching=BatchConfig(max_tuples=8, max_delay=0.01)))
        assert batched.meets_input_rate(tolerance=0.15)
        assert batched.throughput >= 0.8 * base.throughput

    def test_batch_size_histogram_populated(self):
        # The collection window must span several frame inter-arrivals
        # (24 fps -> ~42 ms apart) for multi-tuple batches to form.
        result = run_swarm(small_config(
            batching=BatchConfig(max_tuples=8, max_delay=0.2)))
        histograms = batch_size_histograms(result)
        assert histograms, "batched run must record swing_batch_size"
        total_batches = sum(h.count for h in histograms)
        total_tuples = sum(h.total for h in histograms)
        assert total_batches > 0
        # Strictly fewer batches than tuples proves multi-tuple batches
        # actually formed (not 8x size-1 flushes).
        assert total_tuples > total_batches

    def test_deterministic_given_seed(self):
        config = dict(batching=BatchConfig(max_tuples=8, max_delay=0.2))
        first = run_swarm(small_config(**config))
        second = run_swarm(small_config(**config))
        assert first.throughput == second.throughput
        assert first.decisions == second.decisions
