"""Tests for the energy estimation model."""

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.device import DeviceProfile, PowerProfile
from repro.simulation.energy import (PEAK_WIFI_BANDWIDTH_BPS, DevicePower,
                                     EnergyReport, PowerEstimator)


def profiles():
    return {
        "B": DeviceProfile("B", "phone", {"app": 0.1},
                           PowerProfile(idle_w=0.3, peak_cpu_w=1.0,
                                        peak_wifi_w=0.5, battery_wh=6.0)),
        "C": DeviceProfile("C", "tablet", {"app": 0.2},
                           PowerProfile(idle_w=0.4, peak_cpu_w=2.0,
                                        peak_wifi_w=0.8, battery_wh=8.0)),
    }


class TestPowerEstimator:
    def test_cpu_power_proportional_to_utilization(self):
        estimator = PowerEstimator(profiles())
        report = estimator.estimate({"B": 0.5, "C": 0.25}, {}, duration=10.0)
        assert report.per_device["B"].cpu_w == pytest.approx(0.5)
        assert report.per_device["C"].cpu_w == pytest.approx(0.5)

    def test_wifi_power_from_bandwidth_fraction(self):
        estimator = PowerEstimator(profiles())
        # Half the peak bandwidth for the whole run.
        transferred = {"B": int(PEAK_WIFI_BANDWIDTH_BPS / 8 * 5)}
        report = estimator.estimate({}, transferred, duration=10.0)
        assert report.per_device["B"].wifi_w == pytest.approx(0.25)

    def test_missing_devices_draw_zero_dynamic_power(self):
        estimator = PowerEstimator(profiles())
        report = estimator.estimate({}, {}, duration=10.0)
        assert report.per_device["B"].total_w == 0.0

    def test_aggregate_sums_devices(self):
        estimator = PowerEstimator(profiles())
        report = estimator.estimate({"B": 1.0, "C": 1.0}, {}, duration=1.0)
        assert report.aggregate_w == pytest.approx(3.0)
        assert report.aggregate_energy_j() == pytest.approx(3.0)

    def test_fps_per_watt(self):
        report = EnergyReport(
            per_device={"B": DevicePower("B", cpu_w=1.0, wifi_w=1.0)},
            duration=10.0)
        assert report.fps_per_watt(10.0) == pytest.approx(5.0)

    def test_fps_per_watt_zero_power(self):
        report = EnergyReport(per_device={}, duration=1.0)
        assert report.fps_per_watt(10.0) == 0.0

    def test_invalid_duration(self):
        with pytest.raises(SimulationError):
            PowerEstimator(profiles()).estimate({}, {}, duration=0.0)

    def test_battery_life_two_hours_for_heavy_use(self):
        # Paper Sec. I: continuous face recognition drains a full battery
        # in about two hours.
        estimator = PowerEstimator(profiles())
        hours = estimator.battery_life_hours("B", average_w=2.7)
        assert hours == pytest.approx(6.0 / 3.0)

    def test_battery_life_invalid_power(self):
        profile_map = {
            "Z": DeviceProfile("Z", "m", {"app": 0.1},
                               PowerProfile(idle_w=0.0, peak_cpu_w=1.0,
                                            peak_wifi_w=0.5))}
        estimator = PowerEstimator(profile_map)
        with pytest.raises(SimulationError):
            estimator.battery_life_hours("Z", average_w=-0.0)
