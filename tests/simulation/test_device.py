"""Tests for the device capability and thermal models."""

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.device import (BACKGROUND_CONTENTION, CpuModel,
                                     DeviceProfile, MIN_SPEED_FACTOR,
                                     PowerProfile, ThermalThrottle)


def profile(delay=0.1):
    return DeviceProfile(
        device_id="X", model="TestPhone",
        processing_delay={"app": delay},
        power=PowerProfile(idle_w=0.3, peak_cpu_w=1.0, peak_wifi_w=0.5))


class TestDeviceProfile:
    def test_base_delay_and_rate(self):
        device = profile(0.1)
        assert device.base_delay("app") == 0.1
        assert device.service_rate("app") == pytest.approx(10.0)

    def test_unknown_app_rejected(self):
        with pytest.raises(SimulationError):
            profile().base_delay("ghost")

    def test_with_delay_returns_new_profile(self):
        device = profile(0.1)
        faster = device.with_delay("app", 0.05)
        assert faster.base_delay("app") == 0.05
        assert device.base_delay("app") == 0.1

    def test_invalid_delay_rejected(self):
        with pytest.raises(SimulationError):
            DeviceProfile(device_id="X", model="m",
                          processing_delay={"app": 0.0},
                          power=PowerProfile(0.3, 1.0, 0.5))

    def test_empty_id_rejected(self):
        with pytest.raises(SimulationError):
            DeviceProfile(device_id="", model="m",
                          processing_delay={"app": 0.1},
                          power=PowerProfile(0.3, 1.0, 0.5))

    def test_framework_overhead_bounds(self):
        with pytest.raises(SimulationError):
            DeviceProfile(device_id="X", model="m",
                          processing_delay={"app": 0.1},
                          power=PowerProfile(0.3, 1.0, 0.5),
                          framework_overhead=1.5)


class TestPowerProfile:
    def test_cpu_power_scales_with_utilization(self):
        power = PowerProfile(idle_w=0.3, peak_cpu_w=1.0, peak_wifi_w=0.5)
        assert power.cpu_power(0.0) == 0.0
        assert power.cpu_power(0.5) == pytest.approx(0.5)
        assert power.cpu_power(1.0) == pytest.approx(1.0)

    def test_utilization_clamped(self):
        power = PowerProfile(0.3, 1.0, 0.5)
        assert power.cpu_power(2.0) == pytest.approx(1.0)
        assert power.wifi_power(-1.0) == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(SimulationError):
            PowerProfile(idle_w=-0.1, peak_cpu_w=1.0, peak_wifi_w=0.5)


class TestCpuModel:
    def test_no_background_load_uses_base_delay(self):
        cpu = CpuModel(profile(0.1), "app")
        assert cpu.mean_service_time() == pytest.approx(0.1)

    def test_background_load_inflates_service_time(self):
        cpu = CpuModel(profile(0.1), "app", background_load=0.5)
        expected = 0.1 / (1.0 - BACKGROUND_CONTENTION * 0.5)
        assert cpu.mean_service_time() == pytest.approx(expected)

    def test_full_load_bounded_below_by_min_speed(self):
        cpu = CpuModel(profile(0.1), "app", background_load=1.0)
        expected = max(MIN_SPEED_FACTOR, 1.0 - BACKGROUND_CONTENTION)
        assert cpu.speed_factor == pytest.approx(expected)
        assert cpu.speed_factor >= MIN_SPEED_FACTOR

    def test_full_load_roughly_six_times_slower(self):
        # Calibration target from paper Fig. 2 (middle panel).
        cpu = CpuModel(profile(0.0929), "app", background_load=1.0)
        ratio = cpu.mean_service_time() / 0.0929
        assert 5.0 <= ratio <= 8.0

    def test_jitter_multiplies(self):
        cpu = CpuModel(profile(0.1), "app")
        assert cpu.service_time(jitter=2.0) == pytest.approx(0.2)

    def test_invalid_jitter(self):
        with pytest.raises(SimulationError):
            CpuModel(profile(), "app").service_time(jitter=0.0)

    def test_invalid_background_load(self):
        with pytest.raises(SimulationError):
            CpuModel(profile(), "app", background_load=1.5)
        cpu = CpuModel(profile(), "app")
        with pytest.raises(SimulationError):
            cpu.set_background_load(-0.1)

    def test_set_background_load(self):
        cpu = CpuModel(profile(0.1), "app")
        cpu.set_background_load(0.5)
        assert cpu.effective_rate() < 10.0


class TestThermalThrottle:
    def test_cool_device_runs_full_speed(self):
        thermal = ThermalThrottle()
        assert thermal.speed_factor() == 1.0

    def test_sustained_full_load_throttles(self):
        thermal = ThermalThrottle(threshold=0.6, max_slowdown=0.5, tau=5.0)
        now = 0.0
        for _ in range(20):
            now += 1.0
            thermal.record_busy(1.0)
            thermal.update(now)
        assert thermal.utilization_ewma > 0.95
        assert thermal.speed_factor() == pytest.approx(0.5, abs=0.06)

    def test_light_load_never_throttles(self):
        thermal = ThermalThrottle(threshold=0.6)
        now = 0.0
        for _ in range(20):
            now += 1.0
            thermal.record_busy(0.3)
            thermal.update(now)
        assert thermal.speed_factor() == 1.0

    def test_recovers_after_cooldown(self):
        thermal = ThermalThrottle(threshold=0.6, max_slowdown=0.5, tau=2.0)
        now = 0.0
        for _ in range(10):
            now += 1.0
            thermal.record_busy(1.0)
            thermal.update(now)
        throttled = thermal.speed_factor()
        for _ in range(20):
            now += 1.0
            thermal.update(now)
        assert thermal.speed_factor() > throttled
        assert thermal.speed_factor() == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            ThermalThrottle(threshold=1.0)
        with pytest.raises(SimulationError):
            ThermalThrottle(max_slowdown=1.0)
        with pytest.raises(SimulationError):
            ThermalThrottle(tau=0.0)
        with pytest.raises(SimulationError):
            ThermalThrottle().record_busy(-1.0)
