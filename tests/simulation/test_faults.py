"""Fault-injection tests: silent kills discovered via loss accounting.

The acceptance scenario for the failure-detection subsystem: kill 2 of N
devices mid-stream with NO control-plane notification, and require that
the run completes cleanly, the tracker marks exactly the killed devices
dead within the configured timeout window, their traffic share moves to
the survivors, and the metrics registry attributes non-zero lost counts
to exactly the killed devices.
"""

import pytest

from repro import metrics as metrics_mod
from repro.core.exceptions import SimulationError
from repro.simulation.scenarios import fault_injection
from repro.simulation.swarm import (DeviceKillEvent, DeviceReviveEvent,
                                    MessageDelayEvent, MessageDropEvent,
                                    SwarmConfig, run_swarm)
from repro.simulation.workload import face_workload
from repro import profiles

KILL_TIME = 8.0
ACK_TIMEOUT = 2.0
DEAD_AFTER = 3


def run_fault_scenario(**kwargs):
    kwargs.setdefault("duration", 25.0)
    kwargs.setdefault("kill_time", KILL_TIME)
    kwargs.setdefault("ack_timeout", ACK_TIMEOUT)
    kwargs.setdefault("dead_after", DEAD_AFTER)
    return run_swarm(fault_injection(**kwargs))


class TestFaultInjectionAcceptance:
    def test_kill_two_of_four_mid_stream(self):
        result = run_fault_scenario()
        killed = {"B", "G"}
        survivors = {"D", "H"}

        # 1. The run completed with no unhandled exceptions (we are here)
        #    and still made progress on the survivors.
        assert result.throughput > 0.0

        # 2. Exactly the killed devices were marked dead.
        assert set(result.dead_downstreams) == killed
        marked = result.registry.values_by_label(
            metrics_mod.MARKED_DEAD_TOTAL, "downstream")
        assert set(marked) == killed

        # 3. Non-zero lost counts for exactly the killed devices.
        lost = result.registry.values_by_label(metrics_mod.LOST_TOTAL,
                                               "downstream")
        assert set(lost) == killed
        assert all(count > 0 for count in lost.values())
        for device_id in survivors:
            assert result.lost_by_downstream.get(device_id, 0) == 0

        # 4. Their share was re-routed: the final decision's weights
        #    renormalize over the survivors only.
        _when, decision = result.decisions[-1]
        assert set(decision.weights) <= survivors
        assert sum(decision.weights.values()) > 0.0

    def test_detection_within_configured_window(self):
        result = run_fault_scenario()
        killed = {"B", "G"}
        # Detection bound: every in-flight tuple to a dead device expires
        # within ack_timeout (+ one control tick per required expiry
        # round); after that the policy must have dropped both devices.
        detection_deadline = (KILL_TIME + ACK_TIMEOUT + DEAD_AFTER + 1.0)
        for when, decision in result.decisions:
            if when >= detection_deadline:
                assert not (set(decision.weights) & killed), \
                    "still routing to %s at t=%.1f" % (
                        set(decision.weights) & killed, when)

    def test_sent_counters_cover_tuples_into_the_void(self):
        result = run_fault_scenario()
        sent = result.registry.values_by_label(metrics_mod.SENT_TOTAL,
                                               "downstream")
        acked = result.registry.values_by_label(metrics_mod.ACKED_TOTAL,
                                                "downstream")
        lost = result.registry.values_by_label(metrics_mod.LOST_TOTAL,
                                               "downstream")
        for device_id in ("B", "G"):
            # Sends after the kill are recorded even though the device is
            # gone — that is what makes the losses attributable.
            assert sent[device_id] > acked.get(device_id, 0)
            resolved = acked.get(device_id, 0) + lost.get(device_id, 0)
            assert resolved <= sent[device_id]

    def test_revived_devices_resurrected_by_probing(self):
        result = run_fault_scenario(duration=40.0, revive_time=20.0)
        assert result.dead_downstreams == []
        resurrected = result.registry.values_by_label(
            metrics_mod.RESURRECTED_TOTAL, "downstream")
        assert set(resurrected) == {"B", "G"}

    def test_combined_fault_run_ticks_every_counter(self):
        # All four fault flavors in one end-to-end run: silent kills,
        # later revives, a message-drop window and a message-delay
        # window — each must leave its trace in the counters.
        clean = run_fault_scenario(duration=40.0, revive_time=20.0)
        result = run_fault_scenario(duration=40.0, revive_time=20.0,
                                    drop_window=4.0, delay_window=6.0,
                                    extra_delay=0.4)
        registry = result.registry
        marked = registry.values_by_label(metrics_mod.MARKED_DEAD_TOTAL,
                                          "downstream")
        assert set(marked) == {"B", "G"}          # kills detected
        resurrected = registry.values_by_label(
            metrics_mod.RESURRECTED_TOTAL, "downstream")
        assert set(resurrected) == {"B", "G"}     # revives detected
        assert result.dead_downstreams == []
        assert sum(result.lost_by_downstream.values()) > 0  # losses charged
        dropped = registry.values_by_label(metrics_mod.DROPPED_TOTAL,
                                           "reason")
        assert dropped.get("link_down", 0) > 0    # drop window fired
        assert result.latency.mean > clean.latency.mean  # delay window felt

    def test_registries_are_private_per_run(self):
        first = run_fault_scenario(duration=15.0)
        second = run_fault_scenario(duration=15.0)
        assert first.registry is not second.registry
        lost_first = first.registry.values_by_label(metrics_mod.LOST_TOTAL,
                                                    "downstream")
        lost_second = second.registry.values_by_label(metrics_mod.LOST_TOTAL,
                                                      "downstream")
        assert lost_first == lost_second  # same seed, not doubled counts


class TestMessageFaults:
    def _config(self, faults, duration=12.0):
        return SwarmConfig(
            workload=face_workload(),
            workers=profiles.worker_profiles(["D", "H"]),
            source=profiles.device_profile(profiles.SOURCE_ID),
            policy="LRS",
            duration=duration,
            seed=0,
            ack_timeout=ACK_TIMEOUT,
            faults=faults,
        )

    def test_message_drop_window_loses_tuples(self):
        clean = run_swarm(self._config(()))
        faulty = run_swarm(self._config(
            (MessageDropEvent(time=3.0, duration=4.0, drop_prob=1.0),)))
        assert faulty.throughput < clean.throughput
        dropped = faulty.registry.values_by_label(
            metrics_mod.DROPPED_TOTAL, "reason")
        assert dropped.get("link_down", 0) > 0

    def test_message_delay_window_stretches_latency(self):
        clean = run_swarm(self._config(()))
        faulty = run_swarm(self._config(
            (MessageDelayEvent(time=3.0, duration=4.0, extra_delay=0.4),)))
        assert faulty.latency.mean > clean.latency.mean

    def test_targeted_drop_only_hits_named_device(self):
        faulty = run_swarm(self._config(
            (MessageDropEvent(time=3.0, duration=6.0, drop_prob=1.0,
                              device_id="D"),)))
        lost = faulty.lost_by_downstream
        assert lost.get("H", 0) == 0


class TestFaultConfigValidation:
    def test_unknown_fault_event_rejected(self):
        config = SwarmConfig(
            workload=face_workload(),
            workers=profiles.worker_profiles(["D"]),
            source=profiles.device_profile(profiles.SOURCE_ID),
            faults=("not-a-fault",),
        )
        with pytest.raises(SimulationError):
            config.validate()

    def test_bad_ack_timeout_rejected(self):
        config = SwarmConfig(
            workload=face_workload(),
            workers=profiles.worker_profiles(["D"]),
            source=profiles.device_profile(profiles.SOURCE_ID),
            ack_timeout=0.0,
        )
        with pytest.raises(SimulationError):
            config.validate()

    def test_cannot_kill_every_worker(self):
        with pytest.raises(SimulationError):
            fault_injection(worker_ids=("B", "G"), kill_ids=("B", "G"))

    def test_cannot_kill_unknown_device(self):
        with pytest.raises(SimulationError):
            fault_injection(worker_ids=("B", "G"), kill_ids=("Z",))

    def test_kill_and_revive_events_schedule(self):
        config = fault_injection(revive_time=20.0)
        kills = [f for f in config.faults if isinstance(f, DeviceKillEvent)]
        revives = [f for f in config.faults
                   if isinstance(f, DeviceReviveEvent)]
        assert {f.device_id for f in kills} == {"B", "G"}
        assert {f.device_id for f in revives} == {"B", "G"}
