"""Tests for cloudlet mode (paper Sec. II)."""

import pytest

from repro import profiles
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP


class TestCloudletProfile:
    def test_faster_than_every_phone(self):
        cloudlet = profiles.cloudlet_profile()
        fastest_phone = profiles.device_profile("H")
        assert (cloudlet.service_rate(FACE_APP)
                > 3 * fastest_phone.service_rate(FACE_APP))

    def test_does_not_thermal_throttle(self):
        assert profiles.cloudlet_profile().throttles is False
        assert profiles.device_profile("H").throttles is True

    def test_wall_powered(self):
        cloudlet = profiles.cloudlet_profile()
        assert cloudlet.power.battery_wh > 1e3

    def test_custom_id(self):
        assert profiles.cloudlet_profile("edge-1").device_id == "edge-1"


class TestCloudletScenario:
    def test_adds_cloudlet_to_testbed(self):
        config = scenarios.cloudlet_mode()
        assert "CL" in config.workers
        assert len(config.workers) == len(profiles.WORKER_IDS) + 1
        config.validate()

    @pytest.fixture(scope="class")
    def pair(self):
        baseline = run_swarm(scenarios.testbed(policy="LRS", duration=25.0))
        assisted = run_swarm(scenarios.cloudlet_mode(policy="LRS",
                                                     duration=25.0))
        return baseline, assisted

    def test_cloudlet_takes_most_load_under_lrs(self, pair):
        _baseline, assisted = pair
        rates = assisted.input_rates()
        assert rates["CL"] == max(rates.values())
        assert rates["CL"] > 10.0

    def test_cloudlet_cuts_latency(self, pair):
        baseline, assisted = pair
        assert assisted.latency.mean < baseline.latency.mean / 2

    def test_target_met_with_cloudlet(self, pair):
        _baseline, assisted = pair
        assert assisted.meets_input_rate(tolerance=0.05)

    def test_cloudlet_power_counted(self, pair):
        _baseline, assisted = pair
        assert "CL" in assisted.energy.per_device
        assert assisted.energy.per_device["CL"].cpu_w > 0
