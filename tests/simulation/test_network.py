"""Tests for the wireless network model."""

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.engine import Simulator
from repro.simulation.network import (Network, PACKET_BYTES, RSSI_FAIR,
                                      RSSI_GOOD, RSSI_POOR, WirelessLink,
                                      goodput_for_rssi, rssi_for_region,
                                      stall_for_rssi)


class TestRateCurves:
    def test_goodput_monotonic_in_rssi(self):
        rssis = [-30, -50, -60, -65, -70, -75, -80, -90]
        goodputs = [goodput_for_rssi(rssi) for rssi in rssis]
        assert all(a >= b for a, b in zip(goodputs, goodputs[1:]))

    def test_stall_monotonic_in_weakness(self):
        rssis = [-30, -60, -70, -80, -90]
        stalls = [stall_for_rssi(rssi) for rssi in rssis]
        assert all(a <= b for a, b in zip(stalls, stalls[1:]))

    def test_clamped_outside_table(self):
        assert goodput_for_rssi(-10) == goodput_for_rssi(-30)
        assert goodput_for_rssi(-120) == goodput_for_rssi(-90)

    def test_interpolation_between_anchors(self):
        mid = goodput_for_rssi(-55)
        assert goodput_for_rssi(-60) < mid < goodput_for_rssi(-50)

    def test_good_signal_has_no_stall(self):
        assert stall_for_rssi(RSSI_GOOD) == 0.0
        assert stall_for_rssi(RSSI_POOR) > 0.1

    def test_region_names(self):
        assert rssi_for_region("good") == RSSI_GOOD
        assert rssi_for_region("fair") == RSSI_FAIR
        assert rssi_for_region("poor") == RSSI_POOR
        assert rssi_for_region("bad") == RSSI_POOR

    def test_unknown_region(self):
        with pytest.raises(SimulationError):
            rssi_for_region("excellent")


class TestWirelessLink:
    def test_packet_time_inverse_goodput(self):
        link = WirelessLink("B", rssi=RSSI_GOOD)
        expected = PACKET_BYTES * 8.0 / goodput_for_rssi(RSSI_GOOD)
        assert link.packet_time() == pytest.approx(expected)

    def test_weak_link_slower(self):
        good = WirelessLink("G", rssi=RSSI_GOOD)
        poor = WirelessLink("B", rssi=RSSI_POOR)
        assert poor.packet_time() > 10 * good.packet_time()

    def test_nominal_transfer_time_includes_stall(self):
        link = WirelessLink("B", rssi=RSSI_POOR)
        base = 6000 * 8.0 / link.goodput
        assert link.nominal_transfer_time(6000) == pytest.approx(
            base + link.stall)

    def test_set_rssi_changes_rates(self):
        link = WirelessLink("B", rssi=RSSI_GOOD)
        before = link.packet_time()
        link.set_rssi(RSSI_POOR)
        assert link.packet_time() > before

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            WirelessLink("B").nominal_transfer_time(-1)


class TestRadio:
    def _network_with(self, *attachments):
        sim = Simulator()
        network = Network(sim)
        for device_id, rssi in attachments:
            network.attach(device_id, rssi=rssi)
        return sim, network

    def test_single_transfer_time(self):
        sim, network = self._network_with(("A", RSSI_GOOD), ("B", RSSI_GOOD))
        radio = network.radio("A")
        done = []
        delivered = radio.connection(network.link("B")).send(PACKET_BYTES * 4)
        delivered.add_callback(lambda e: done.append(sim.now))
        sim.run(until=1.0)
        expected = 4 * network.link("B").packet_time()
        assert done[0] == pytest.approx(expected)

    def test_transfers_serialize_on_one_connection(self):
        sim, network = self._network_with(("A", RSSI_GOOD), ("B", RSSI_GOOD))
        radio = network.radio("A")
        conn = radio.connection(network.link("B"))
        finish = []
        for _ in range(2):
            conn.send(PACKET_BYTES).add_callback(
                lambda e: finish.append(sim.now))
        sim.run(until=1.0)
        packet = network.link("B").packet_time()
        assert finish[0] == pytest.approx(packet)
        assert finish[1] == pytest.approx(2 * packet)

    def test_airtime_fairness_protects_fast_flow(self):
        # A slow destination saturates its connection; a fast destination's
        # transfer must still complete in roughly its fair-share time, not
        # be stuck behind the slow flow's packets.
        sim, network = self._network_with(("A", RSSI_GOOD),
                                          ("slow", RSSI_POOR),
                                          ("fast", RSSI_GOOD))
        radio = network.radio("A")
        slow_conn = radio.connection(network.link("slow"))
        fast_conn = radio.connection(network.link("fast"))
        for _ in range(50):
            slow_conn.send(PACKET_BYTES * 4)
        finish = []
        fast_conn.send(PACKET_BYTES * 4).add_callback(
            lambda e: finish.append(sim.now))
        sim.run(until=60.0)
        assert finish, "fast transfer never completed"
        # The scheduler is non-preemptive, so the fast transfer may wait
        # for one in-flight slow packet (+ its frame stall) — but it must
        # not queue behind the slow connection's whole 50-frame backlog.
        slow = network.link("slow")
        bound = (slow.packet_time() + slow.stall
                 + 10 * network.link("fast").packet_time() + 0.01)
        assert finish[0] < bound

    def test_stall_charged_once_per_frame(self):
        sim, network = self._network_with(("A", RSSI_GOOD), ("B", RSSI_POOR))
        radio = network.radio("A")
        conn = radio.connection(network.link("B"))
        finish = []
        conn.send(PACKET_BYTES * 2).add_callback(lambda e: finish.append(sim.now))
        sim.run(until=10.0)
        link = network.link("B")
        expected = 2 * link.packet_time() + link.stall
        assert finish[0] == pytest.approx(expected)

    def test_busy_time_and_bytes_accumulate(self):
        sim, network = self._network_with(("A", RSSI_GOOD), ("B", RSSI_GOOD))
        radio = network.radio("A")
        radio.connection(network.link("B")).send(PACKET_BYTES * 3)
        sim.run(until=1.0)
        assert radio.bytes_sent == PACKET_BYTES * 3
        assert radio.busy_time == pytest.approx(
            3 * network.link("B").packet_time())
        assert 0 < radio.airtime_fraction(1.0) < 1

    def test_send_zero_bytes_rejected(self):
        sim, network = self._network_with(("A", RSSI_GOOD), ("B", RSSI_GOOD))
        conn = network.radio("A").connection(network.link("B"))
        with pytest.raises(SimulationError):
            conn.send(0)


class TestNetworkDirectory:
    def test_attach_detach_reattach(self):
        sim = Simulator()
        network = Network(sim)
        link = network.attach("B", rssi=RSSI_GOOD)
        assert link.up
        network.detach("B")
        assert not network.link("B").up
        network.reattach("B", rssi=RSSI_POOR)
        assert network.link("B").up
        assert network.link("B").rssi == RSSI_POOR

    def test_double_attach_rejected(self):
        sim = Simulator()
        network = Network(sim)
        network.attach("B")
        with pytest.raises(SimulationError):
            network.attach("B")

    def test_unknown_device_rejected(self):
        network = Network(Simulator())
        with pytest.raises(SimulationError):
            network.link("ghost")
        with pytest.raises(SimulationError):
            network.radio("ghost")

    def test_device_ids_sorted(self):
        network = Network(Simulator())
        network.attach("C")
        network.attach("A")
        assert network.device_ids() == ["A", "C"]
