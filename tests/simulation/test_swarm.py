"""Integration tests for the swarm simulation harness."""

import pytest

from repro import profiles
from repro.core.exceptions import SimulationError
from repro.simulation import scenarios
from repro.simulation.metrics import (DROP_CONN_OVERFLOW, DROP_DEVICE_LEFT,
                                      DROP_LINK_DOWN, DROP_SOURCE_QUEUE)
from repro.simulation.network import RSSI_GOOD, RSSI_POOR
from repro.simulation.swarm import (JoinEvent, LeaveEvent, SwarmConfig,
                                    UNBOUNDED_QUEUE, run_swarm)
from repro.simulation.workload import face_workload


def small_config(**overrides):
    defaults = dict(
        workload=face_workload(),
        workers=profiles.worker_profiles(["G", "H", "I"]),
        source=profiles.device_profile("A"),
        policy="LRS",
        duration=10.0,
        seed=1,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


class TestConfigValidation:
    def test_duration_positive(self):
        with pytest.raises(SimulationError):
            small_config(duration=0.0).validate()

    def test_needs_workers(self):
        with pytest.raises(SimulationError):
            small_config(workers={}).validate()

    def test_join_conflicts_with_initial(self):
        config = small_config(joins=(JoinEvent(time=1.0, device_id="G"),))
        with pytest.raises(SimulationError):
            config.validate()

    def test_window_frames_at_least_two(self):
        config = small_config(socket_window_bytes=100)
        assert config.window_frames() == 2

    def test_window_frames_from_bytes(self):
        config = small_config(socket_window_bytes=30_000)
        assert config.window_frames() == 5  # 6 kB frames

    def test_source_queue_default_two_seconds(self):
        assert small_config().resolved_source_queue() == 48

    def test_source_queue_unbounded(self):
        config = small_config(source_queue_frames=UNBOUNDED_QUEUE)
        assert config.resolved_source_queue() is None

    def test_source_queue_negative_rejected(self):
        with pytest.raises(SimulationError):
            small_config(source_queue_frames=-1).resolved_source_queue()


class TestBasicOperation:
    def test_fast_trio_meets_24fps(self):
        result = run_swarm(small_config())
        assert result.throughput >= 22.0
        assert result.meets_input_rate()

    def test_frames_conserved(self):
        result = run_swarm(small_config())
        metrics = result.metrics
        completed = len(metrics.completed_frames())
        in_flight = metrics.generated - completed - metrics.loss_count()
        assert in_flight >= 0
        # Bounded by the queues: source egress + per-connection windows.
        assert in_flight < 48 + 3 * 12

    def test_latency_stats_present(self):
        result = run_swarm(small_config())
        assert result.latency is not None
        assert result.latency.minimum > 0.0
        assert result.latency.mean < 2.0

    def test_decisions_recorded_every_interval(self):
        result = run_swarm(small_config(duration=5.0))
        assert len(result.decisions) == 5

    def test_energy_reported_for_all_workers(self):
        result = run_swarm(small_config())
        assert set(result.energy.per_device) == {"G", "H", "I"}
        assert result.energy.aggregate_w > 0

    def test_reproducible_with_same_seed(self):
        first = run_swarm(small_config(seed=5))
        second = run_swarm(small_config(seed=5))
        assert first.throughput == second.throughput
        assert first.latency.mean == second.latency.mean

    def test_different_seeds_differ(self):
        first = run_swarm(small_config(seed=5))
        second = run_swarm(small_config(seed=6))
        assert first.latency.mean != second.latency.mean


class TestOverload:
    def test_single_slow_device_sheds_load(self):
        config = small_config(workers=profiles.worker_profiles(["E"]),
                              policy="RR", duration=10.0)
        result = run_swarm(config)
        # E can do ~2 FPS of the offered 24: most frames must drop.
        assert result.throughput < 4.0
        assert result.frames_lost > 100

    def test_unbounded_queue_has_no_source_drops(self):
        config = small_config(workers=profiles.worker_profiles(["E"]),
                              policy="RR",
                              source_queue_frames=UNBOUNDED_QUEUE,
                              socket_window_bytes=1 << 30,
                              duration=5.0)
        result = run_swarm(config)
        assert result.metrics.dropped.get(DROP_SOURCE_QUEUE, 0) == 0
        assert result.metrics.dropped.get(DROP_CONN_OVERFLOW, 0) == 0

    def test_delay_builds_up_when_overloaded(self):
        config = small_config(workers=profiles.worker_profiles(["E"]),
                              policy="RR",
                              source_queue_frames=UNBOUNDED_QUEUE,
                              socket_window_bytes=1 << 30,
                              duration=5.0)
        result = run_swarm(config)
        completed = result.metrics.completed_frames()
        delays = [record.total_delay for record in completed]
        # Fig. 1 behaviour: later frames wait behind a growing queue.
        assert delays[-1] > delays[0] * 3


class TestWeakSignal:
    def test_poor_signal_worker_has_higher_latency(self):
        config = small_config(workers=profiles.worker_profiles(["B", "H"]),
                              rssi={"B": RSSI_POOR, "H": RSSI_GOOD},
                              policy="RR", duration=10.0)
        result = run_swarm(config)
        frames = result.metrics.completed_frames()
        by_device = {}
        for record in frames:
            if record.tx_started_at is None:
                continue
            # Post-dispatch delay isolates the per-connection effect from
            # the shared source queue both devices' frames wait in.
            by_device.setdefault(record.device_id, []).append(
                record.sink_arrived_at - record.tx_started_at)
        mean = lambda values: sum(values) / len(values)
        assert mean(by_device["B"]) > 2 * mean(by_device["H"])

    def test_lrs_avoids_poor_signal_worker(self):
        config = small_config(
            workers=profiles.worker_profiles(["B", "G", "H", "I"]),
            rssi={"B": RSSI_POOR}, policy="LRS", duration=15.0)
        result = run_swarm(config)
        rates = result.input_rates()
        assert rates["B"] < rates["H"] / 2


class TestDynamics:
    def test_join_increases_throughput(self):
        config = scenarios.joining(duration=24.0, join_time=12.0, seed=2)
        result = run_swarm(config)
        series = result.throughput_series()
        before = sum(series[6:12]) / 6
        after = sum(series[18:24]) / 6
        assert after > before + 2.0

    def test_join_reaches_target_rate(self):
        config = scenarios.joining(duration=30.0, join_time=10.0, seed=2)
        result = run_swarm(config)
        series = result.throughput_series()
        assert max(series[12:]) >= 22.0

    def test_leave_loses_some_frames_then_recovers(self):
        config = scenarios.leaving(duration=30.0, leave_time=15.0, seed=3)
        result = run_swarm(config)
        lost = (result.metrics.dropped.get(DROP_DEVICE_LEFT, 0)
                + result.metrics.dropped.get(DROP_LINK_DOWN, 0))
        assert 1 <= lost <= 40  # paper: 13 frames lost
        series = result.throughput_series()
        # Recovers to what B+H can still sustain.
        assert sum(series[20:28]) / 8 >= 12.0

    def test_leaver_gets_no_traffic_after_detection(self):
        config = scenarios.leaving(duration=30.0, leave_time=10.0, seed=3)
        result = run_swarm(config)
        per_device = result.metrics.per_device_throughput_series(30.0)
        assert sum(per_device["G"][12:]) == 0.0

    def test_mobility_shifts_load_away_from_mover(self):
        config = scenarios.moving(duration=90.0, dwell=30.0, seed=4)
        result = run_swarm(config)
        per_device = result.metrics.per_device_throughput_series(90.0)
        g_early = sum(per_device["G"][5:25]) / 20
        g_late = sum(per_device["G"][65:85]) / 20
        assert g_late < g_early / 2

    def test_mobility_overall_throughput_recovers(self):
        config = scenarios.moving(duration=90.0, dwell=30.0, seed=4)
        result = run_swarm(config)
        series = result.throughput_series()
        late = sum(series[75:88]) / 13
        # B+H sustain most of the load once LRS routes around G.
        assert late >= 15.0


class TestReordering:
    def test_playback_monotonic(self):
        result = run_swarm(small_config())
        assert result.reorder.is_monotonic()

    def test_most_frames_played(self):
        result = run_swarm(small_config())
        played = len(result.reorder.playback)
        completed = len(result.metrics.completed_frames())
        assert played >= completed * 0.95
