"""Tests for the replication/statistics harness."""

import pytest

from repro import profiles
from repro.core.exceptions import SimulationError
from repro.simulation.replication import (MetricSummary, compare_policies,
                                          replicate)
from repro.simulation.swarm import SwarmConfig
from repro.simulation.workload import face_workload


def small_config(policy="LRS"):
    return SwarmConfig(workload=face_workload(),
                       workers=profiles.worker_profiles(["G", "H"]),
                       source=profiles.device_profile("A"),
                       policy=policy, duration=8.0, seed=0)


class TestMetricSummary:
    def test_mean_and_stddev(self):
        summary = MetricSummary("x", (1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.stddev == pytest.approx(1.0)
        assert summary.count == 3

    def test_single_sample_has_zero_spread(self):
        summary = MetricSummary("x", (5.0,))
        assert summary.stddev == 0.0
        assert summary.ci95_halfwidth == 0.0

    def test_interval_contains_mean(self):
        summary = MetricSummary("x", (1.0, 2.0, 3.0, 4.0))
        low, high = summary.interval()
        assert low <= summary.mean <= high

    def test_ci_shrinks_with_samples(self):
        narrow = MetricSummary("x", tuple([1.0, 2.0] * 8))
        wide = MetricSummary("x", (1.0, 2.0))
        assert narrow.ci95_halfwidth < wide.ci95_halfwidth


class TestReplicate:
    def test_runs_once_per_seed(self):
        replicated = replicate(small_config(), seeds=[0, 1, 2])
        assert len(replicated.results) == 3
        seeds = [result.config.seed for result in replicated.results]
        assert seeds == [0, 1, 2]

    def test_original_config_untouched(self):
        config = small_config()
        replicate(config, seeds=[5])
        assert config.seed == 0

    def test_summaries_available(self):
        replicated = replicate(small_config(), seeds=[0, 1])
        assert replicated.throughput().count == 2
        assert replicated.latency_mean().mean > 0
        assert replicated.aggregate_power().mean > 0
        assert replicated.fps_per_watt().mean > 0

    def test_empty_seeds_rejected(self):
        with pytest.raises(SimulationError):
            replicate(small_config(), seeds=[])

    def test_custom_metric(self):
        replicated = replicate(small_config(), seeds=[0, 1])
        summary = replicated.summarize("lost", lambda r: float(r.frames_lost))
        assert summary.count == 2


class TestComparePolicies:
    def test_one_replicated_result_per_policy(self):
        outcomes = compare_policies(small_config, ["RR", "LRS"], seeds=[0, 1])
        assert set(outcomes) == {"RR", "LRS"}
        assert all(len(rep.results) == 2 for rep in outcomes.values())


class TestWelchT:
    def test_identical_summaries_zero(self):
        a = MetricSummary("x", (1.0, 2.0, 3.0))
        assert a.welch_t(a) == pytest.approx(0.0)

    def test_clearly_separated_means_large_t(self):
        a = MetricSummary("x", (10.0, 10.1, 9.9, 10.0))
        b = MetricSummary("x", (1.0, 1.1, 0.9, 1.0))
        assert a.welch_t(b) > 10.0
        assert b.welch_t(a) < -10.0

    def test_zero_spread_different_means_infinite(self):
        a = MetricSummary("x", (5.0, 5.0))
        b = MetricSummary("x", (1.0, 1.0))
        assert a.welch_t(b) == float("inf")

    def test_lrs_vs_rr_significant(self):
        outcomes = compare_policies(small_config, ["RR", "LRS"],
                                    seeds=[0, 1, 2])
        t = outcomes["LRS"].throughput().welch_t(
            outcomes["RR"].throughput())
        assert abs(t) > 2.0
