"""Tests for mobility traces."""

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.mobility import MobilityPlan, MobilityTrace
from repro.simulation.network import RSSI_FAIR, RSSI_GOOD, RSSI_POOR


class TestMobilityTrace:
    def test_stationary(self):
        trace = MobilityTrace.stationary("B", RSSI_GOOD)
        assert trace.rssi_at(0.0) == RSSI_GOOD
        assert trace.rssi_at(1e6) == RSSI_GOOD
        assert trace.change_points() == []

    def test_walk_builds_dwell_steps(self):
        trace = MobilityTrace.walk("G", ["good", "fair", "poor"], dwell=60.0)
        assert trace.rssi_at(0.0) == RSSI_GOOD
        assert trace.rssi_at(59.9) == RSSI_GOOD
        assert trace.rssi_at(60.0) == RSSI_FAIR
        assert trace.rssi_at(120.0) == RSSI_POOR
        assert trace.rssi_at(999.0) == RSSI_POOR

    def test_change_points_exclude_t0(self):
        trace = MobilityTrace.walk("G", ["good", "fair"], dwell=10.0)
        assert trace.change_points() == [(10.0, RSSI_FAIR)]

    def test_must_start_at_zero(self):
        with pytest.raises(SimulationError):
            MobilityTrace("G", ((1.0, RSSI_GOOD),))

    def test_times_strictly_increase(self):
        with pytest.raises(SimulationError):
            MobilityTrace("G", ((0.0, RSSI_GOOD), (0.0, RSSI_FAIR)))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            MobilityTrace("G", ())

    def test_negative_time_rejected(self):
        trace = MobilityTrace.stationary("B", RSSI_GOOD)
        with pytest.raises(SimulationError):
            trace.rssi_at(-1.0)

    def test_invalid_dwell(self):
        with pytest.raises(SimulationError):
            MobilityTrace.walk("G", ["good"], dwell=0.0)


class TestMobilityPlan:
    def test_events_merged_and_sorted(self):
        plan = (MobilityPlan()
                .add(MobilityTrace.walk("G", ["good", "poor"], dwell=30.0))
                .add(MobilityTrace.walk("B", ["good", "fair"], dwell=10.0)))
        events = plan.events()
        assert events == [(10.0, "B", RSSI_FAIR), (30.0, "G", RSSI_POOR)]

    def test_duplicate_device_rejected(self):
        plan = MobilityPlan().add(MobilityTrace.stationary("G", RSSI_GOOD))
        with pytest.raises(SimulationError):
            plan.add(MobilityTrace.stationary("G", RSSI_POOR))

    def test_initial_rssi_with_default(self):
        plan = MobilityPlan().add(MobilityTrace.stationary("G", RSSI_POOR))
        assert plan.initial_rssi("G", RSSI_GOOD) == RSSI_POOR
        assert plan.initial_rssi("H", RSSI_GOOD) == RSSI_GOOD
