"""Tests for the canned paper scenarios."""

import pytest

from repro import profiles
from repro.core.exceptions import SimulationError
from repro.simulation import scenarios
from repro.simulation.network import RSSI_GOOD, RSSI_POOR
from repro.simulation.workload import FACE_APP, TRANSLATE_APP


class TestWorkloadForApp:
    def test_face(self):
        workload = scenarios.workload_for_app(FACE_APP)
        assert workload.input_rate == 24.0

    def test_translation(self):
        workload = scenarios.workload_for_app(TRANSLATE_APP)
        assert workload.frame_bytes == 72_000

    def test_custom_rate(self):
        assert scenarios.workload_for_app(FACE_APP, 10.0).input_rate == 10.0

    def test_unknown_app(self):
        with pytest.raises(SimulationError):
            scenarios.workload_for_app("weather")


class TestTestbed:
    def test_default_layout_matches_paper(self):
        config = scenarios.testbed()
        assert sorted(config.workers) == profiles.WORKER_IDS
        assert config.source.device_id == "A"
        for device_id in ("B", "C", "D"):
            assert config.rssi[device_id] == RSSI_POOR
        for device_id in ("E", "F", "G", "H", "I"):
            assert config.rssi[device_id] == RSSI_GOOD

    def test_policy_passthrough(self):
        assert scenarios.testbed(policy="PR").policy == "PR"

    def test_worker_subset(self):
        config = scenarios.testbed(worker_ids=["G", "H"])
        assert sorted(config.workers) == ["G", "H"]
        assert all(rssi == RSSI_GOOD for rssi in config.rssi.values())

    def test_config_validates(self):
        scenarios.testbed().validate()


class TestSingleDevice:
    def test_defaults_to_unbounded_queue(self):
        config = scenarios.single_device("B")
        assert config.resolved_source_queue() is None
        assert config.thermal_throttling is False

    def test_bounded_variant(self):
        config = scenarios.single_device("B", bounded_queue=True)
        assert config.resolved_source_queue() is not None

    def test_signal_and_load_applied(self):
        config = scenarios.single_device("B", rssi=RSSI_POOR,
                                         background_load=0.6)
        assert config.rssi["B"] == RSSI_POOR
        assert config.background_load["B"] == 0.6


class TestDynamicsScenarios:
    def test_joining_has_one_join_event(self):
        config = scenarios.joining()
        assert len(config.joins) == 1
        assert config.joins[0].device_id == "G"
        assert sorted(config.workers) == ["B", "D"]

    def test_leaving_has_one_leave_event(self):
        config = scenarios.leaving()
        assert len(config.leaves) == 1
        assert config.leaves[0].device_id == "G"
        assert sorted(config.workers) == ["B", "G", "H"]

    def test_moving_builds_walk_for_mover(self):
        config = scenarios.moving(dwell=60.0)
        trace = config.mobility.traces["G"]
        assert trace.rssi_at(0.0) == RSSI_GOOD
        assert trace.rssi_at(130.0) == RSSI_POOR
        stationary = config.mobility.traces["B"]
        assert stationary.change_points() == []


class TestSkewScenario:
    def test_shape(self):
        config = scenarios.skew()
        assert sorted(config.workers) == ["B", "D", "G", "H"]
        assert config.policy == "LRS"
        keyed = config.keyed_config()
        assert keyed.key_count == 64
        assert keyed.zipf_alpha == 1.2
        assert keyed.split_enabled
        assert config.delivery_config().at_least_once

    def test_static_variant_disables_splitting(self):
        config = scenarios.skew(split_enabled=False)
        assert not config.keyed_config().split_enabled

    def test_best_effort_variant(self):
        config = scenarios.skew(at_least_once=False)
        assert not config.delivery_config().at_least_once

    def test_validates(self):
        scenarios.skew().validate()

    def test_needs_two_workers(self):
        with pytest.raises(SimulationError):
            scenarios.skew(worker_ids=("B",))

    def test_needs_a_key(self):
        with pytest.raises(SimulationError):
            scenarios.skew(key_count=0)


class TestOverloadScenario:
    def test_shape(self):
        config = scenarios.overload()
        assert sorted(config.workers) == ["B", "G", "H"]
        # Every worker starts loaded, and every load lifts at the same
        # instant so the recovery phase is well-defined.
        assert all(load > 0.0 for load in config.background_load.values())
        lifts = {event.device_id: event for event in config.background_events}
        assert sorted(lifts) == sorted(config.workers)
        assert all(event.load == 0.0 and event.time == 14.0
                   for event in lifts.values())
        assert config.thermal_throttling is False

    def test_overload_protection_enabled(self):
        config = scenarios.overload(ttl=1.5, queue_capacity=4)
        overload = config.overload_config()
        assert overload.enabled
        assert overload.ttl == 1.5
        assert overload.queue_capacity == 4

    def test_kill_and_revive_events(self):
        config = scenarios.overload()
        kinds = [type(event).__name__ for event in config.faults]
        assert kinds == ["DeviceKillEvent", "DeviceReviveEvent"]
        assert all(event.device_id == "G" for event in config.faults)

    def test_kill_optional(self):
        config = scenarios.overload(kill_id=None)
        assert config.faults == ()

    def test_validation(self):
        with pytest.raises(SimulationError):
            scenarios.overload(overload_until=40.0, duration=30.0)
        with pytest.raises(SimulationError):
            scenarios.overload(kill_id="Z")
        with pytest.raises(SimulationError):
            scenarios.overload(kill_time=10.0, revive_time=5.0)
