"""Tests for the discrete-event engine."""

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.engine import Resource, Simulator, Store


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run(until=3.0)
        assert fired == ["a", "b"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run(until=2.0)
        assert fired == ["first", "second"]

    def test_run_stops_at_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=1.0)
        assert fired == []
        assert sim.now == 1.0
        sim.run(until=6.0)
        assert fired == ["late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0,
                                               lambda: fired.append(sim.now)))
        sim.run(until=3.0)
        assert fired == [2.0]


class TestEvents:
    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event("once")
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_callback_after_trigger_still_runs(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(7)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run(until=0.0)
        assert seen == [7]

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        first, second = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        gate = sim.all_of([first, second])
        results = []
        gate.add_callback(lambda e: results.append((sim.now, e.value)))
        sim.run(until=3.0)
        assert results == [(2.0, ["a", "b"])]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        gate = sim.all_of([])
        assert gate.triggered


class TestProcesses:
    def test_process_advances_time(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(0.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run(until=5.0)
        assert log == [1.0, 1.5]

    def test_completion_event_carries_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(proc())
        results = []
        process.completion.add_callback(lambda e: results.append(e.value))
        sim.run(until=2.0)
        assert results == ["done"]

    def test_kill_stops_process(self):
        sim = Simulator()
        log = []

        def proc():
            while True:
                yield sim.timeout(1.0)
                log.append(sim.now)

        process = sim.process(proc())
        sim.run(until=2.5)
        process.kill()
        sim.run(until=10.0)
        assert log == [1.0, 2.0]

    def test_yielding_non_event_rejected(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_timeout_value_passed_into_process(self):
        sim = Simulator()
        seen = []

        def proc():
            value = yield sim.timeout(1.0, "payload")
            seen.append(value)

        sim.process(proc())
        sim.run(until=2.0)
        assert seen == ["payload"]


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        taken = []

        def producer():
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                taken.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run(until=1.0)
        assert taken == ["a", "b", "c"]

    def test_get_blocks_until_item(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        sim.process(consumer())
        sim.schedule(2.0, lambda: store.try_put("x"))
        sim.run(until=3.0)
        assert got == [(2.0, "x")]

    def test_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        progress = []

        def producer():
            yield store.put("a")
            progress.append("first")
            yield store.put("b")
            progress.append("second")

        sim.process(producer())
        sim.run(until=0.5)
        assert progress == ["first"]

        def consumer():
            yield store.get()

        sim.process(consumer())
        sim.run(until=1.0)
        assert progress == ["first", "second"]

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.try_put("a") is True
        assert store.try_put("b") is False

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.try_put("x")
        assert store.try_get() == "x"

    def test_try_put_hands_to_waiting_getter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        sim.process(consumer())
        sim.run(until=0.1)
        store.try_put("direct")
        sim.run(until=0.2)
        assert got == ["direct"]
        assert len(store) == 0

    def test_drain_returns_items_and_unblocks_putters(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        done = []

        def producer():
            yield store.put("a")
            yield store.put("b")
            done.append(True)

        sim.process(producer())
        sim.run(until=0.1)
        items = store.drain()
        sim.run(until=0.2)
        assert items == ["a", "b"]
        assert done == [True]

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)


class TestResource:
    def test_mutual_exclusion(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def user(name, hold):
            yield resource.acquire()
            order.append((sim.now, name, "in"))
            yield sim.timeout(hold)
            order.append((sim.now, name, "out"))
            resource.release()

        sim.process(user("a", 1.0))
        sim.process(user("b", 1.0))
        sim.run(until=5.0)
        assert order == [(0.0, "a", "in"), (1.0, "a", "out"),
                         (1.0, "b", "in"), (2.0, "b", "out")]

    def test_counted_capacity(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        entered = []

        def user(name):
            yield resource.acquire()
            entered.append(name)
            yield sim.timeout(1.0)
            resource.release()

        for name in ("a", "b", "c"):
            sim.process(user(name))
        sim.run(until=0.5)
        assert entered == ["a", "b"]
        sim.run(until=1.5)
        assert entered == ["a", "b", "c"]

    def test_release_idle_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim).release()

    def test_availability_counters(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        resource.acquire()
        sim.run(until=0.0)
        assert resource.in_use == 1
        assert resource.available == 1
