"""Tests for seeded RNG substreams."""

import pytest

from repro.simulation.rng import RngRegistry, substream_seed


class TestSubstreamSeed:
    def test_deterministic(self):
        assert substream_seed(1, "a") == substream_seed(1, "a")

    def test_distinct_names_differ(self):
        assert substream_seed(1, "a") != substream_seed(1, "b")

    def test_distinct_roots_differ(self):
        assert substream_seed(1, "a") != substream_seed(2, "a")


class TestRngRegistry:
    def test_streams_are_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_independent(self):
        first = RngRegistry(0)
        sequence_a = [first.stream("a").random() for _ in range(5)]
        # Drawing from stream b must not perturb a fresh registry's a.
        second = RngRegistry(0)
        second.stream("b").random()
        sequence_b = [second.stream("a").random() for _ in range(5)]
        assert sequence_a == sequence_b

    def test_reproducible_across_instances(self):
        a = [RngRegistry(7).stream("s").random() for _ in range(1)]
        b = [RngRegistry(7).stream("s").random() for _ in range(1)]
        assert a == b

    def test_lognormal_jitter_mean_near_one(self):
        registry = RngRegistry(3)
        samples = [registry.lognormal_jitter("j", sigma=0.3)
                   for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.05)
        assert all(sample > 0 for sample in samples)
