#!/usr/bin/env python
"""Swarm dynamics on the calibrated simulator: join, leave, and walk.

Replays the paper's Sec. VI-C experiments — a device joining mid-run
(Fig. 9 left), a device abruptly killed (Fig. 9 right), and a user
walking from good to poor Wi-Fi signal (Fig. 10) — and renders the
throughput timelines as ASCII sparklines.

Run with:  python examples/mobility_simulation.py
"""

from repro.simulation import scenarios
from repro.simulation.metrics import DROP_DEVICE_LEFT, DROP_LINK_DOWN
from repro.simulation.swarm import run_swarm

BARS = " .:-=+*#%@"


def sparkline(values, peak=28.0):
    cells = []
    for value in values:
        level = min(len(BARS) - 1, int(value / peak * (len(BARS) - 1)))
        cells.append(BARS[max(0, level)])
    return "".join(cells)


def show(title, series, annotations=""):
    print(title)
    print("  [%s] 0..%ds %s" % (sparkline(series), len(series), annotations))
    print()


def main():
    print("Swing swarm dynamics (LRS, face recognition)\n")

    joining = run_swarm(scenarios.joining(duration=30.0, join_time=10.0,
                                          seed=2))
    show("1. Joining: B+D compute, G joins at t=10s",
         joining.throughput_series(),
         "(throughput jumps to the 24 FPS target)")

    leaving = run_swarm(scenarios.leaving(duration=35.0, leave_time=15.0,
                                          seed=3))
    lost = (leaving.metrics.dropped.get(DROP_DEVICE_LEFT, 0)
            + leaving.metrics.dropped.get(DROP_LINK_DOWN, 0))
    show("2. Leaving: B+G+H compute, G killed at t=15s",
         leaving.throughput_series(),
         "(%d frames lost in the transition; paper lost 13)" % lost)

    moving = run_swarm(scenarios.moving(duration=180.0, dwell=60.0, seed=4))
    show("3. Moving: G walks good->fair->poor signal (60s each)",
         moving.throughput_series(bin_width=3.0))
    per_device = moving.metrics.per_device_throughput_series(180.0,
                                                             bin_width=3.0)
    for device_id in ("B", "G", "H"):
        print("   %s: [%s]" % (device_id, sparkline(per_device[device_id],
                                                    peak=14.0)))
    print()
    print("G's share fades as its signal weakens; Swing re-routes the")
    print("stream to B and H (paper Fig. 10).")


if __name__ == "__main__":
    main()
