#!/usr/bin/env python
"""Collaborative face recognition — the paper's security-patrol scenario.

A patrol team's phones collaboratively analyze a video stream: one phone
(A) captures frames, the others run the detector and recognizer units.
This example runs the full four-unit pipeline (camera -> detector ->
recognizer -> display) on an in-process swarm with heterogeneous device
speeds, compares RR with LRS, and scores the recognized names against
the synthesizer's ground truth.

Run with:  python examples/face_recognition_swarm.py
"""

import time

from repro.apps.face.pipeline import build_face_graph
from repro.runtime import SwingRuntime

FRAMES = 40
#: emulated heterogeneity: extra processing per measured compute second
#: (B is an old tablet ~25x slower than H)
SLOWDOWNS = {"B": 25.0, "G": 4.0, "H": 0.0}


def score(results, ground_truth):
    """Fraction of frames whose recognized names match the planted ones."""
    by_seq = {data.seq: sorted(data.get_value("names")) for data in results}
    hits = sum(1 for seq, truth in enumerate(ground_truth)
               if by_seq.get(seq) == truth)
    return hits / len(ground_truth) if ground_truth else 0.0


def run(policy):
    graph = build_face_graph(num_identities=5, frame_count=FRAMES, seed=7)
    runtime = SwingRuntime(graph, worker_ids=list(SLOWDOWNS),
                           policy=policy, source_rate=60.0,
                           slowdowns=SLOWDOWNS, seed=7)
    started = time.monotonic()
    results = runtime.run(until_idle=1.0, timeout=120.0)
    elapsed = time.monotonic() - started
    camera = runtime.master.runtime.unit("camera")
    accuracy = score(results, camera.ground_truth)
    shares = {worker_id: worker.processed_count
              for worker_id, worker in runtime.workers.items()}
    return results, accuracy, elapsed, shares


def main():
    print("Collaborative face recognition on a 3-phone swarm "
          "(%d frames)" % FRAMES)
    print("device slowdowns (emulated heterogeneity): %s" % SLOWDOWNS)
    print()
    for policy in ("RR", "LRS"):
        results, accuracy, elapsed, shares = run(policy)
        print("policy %-3s  frames back: %2d/%d   frame-level accuracy: "
              "%.0f%%   wall: %.1fs" % (policy, len(results), FRAMES,
                                        accuracy * 100, elapsed))
        print("            work split: %s" % shares)
    print()
    print("LRS measures per-device latency and routes around the slow")
    print("tablet B, so the stream drains faster at the same accuracy;")
    print("RR keeps feeding B a third of the frames regardless.")


if __name__ == "__main__":
    main()
