#!/usr/bin/env python
"""Capacity planning: how many phones does my sensing app need?

Before forming a swarm, a user can apply the Worker Selection rule
offline to the device catalogue: which devices must participate to
sustain a target rate, what utilisation and battery life to expect, and
where the feasibility frontier lies.  The plan is then checked against
the calibrated simulator.

Run with:  python examples/capacity_planning.py
"""

from repro import profiles
from repro.planner import feasibility_frontier, plan_swarm
from repro.simulation.swarm import SwarmConfig, run_swarm
from repro.simulation.workload import FACE_APP, face_workload
from repro.tools import format_table


def main():
    catalogue = profiles.worker_profiles()
    print("Planning face recognition at 24 FPS over the Table-I phones\n")

    plan = plan_swarm(catalogue, FACE_APP, target_rate=24.0)
    rows = [(device.device_id,
             "%.1f" % device.share_rate,
             "%.0f%%" % (device.utilization * 100),
             "%.2f W" % device.power_w,
             "%.1f h" % device.battery_hours)
            for device in plan.devices]
    print(format_table(["device", "share FPS", "cpu", "power", "battery"],
                       rows))
    print("\nplan: %d devices, %.2f W total, feasible: %s"
          % (len(plan.devices), plan.total_power_w, plan.feasible))

    print("\nFeasibility frontier (devices needed per target rate):")
    frontier = feasibility_frontier(catalogue, FACE_APP,
                                    rates=[6, 12, 24, 36, 48, 60])
    for rate, count in frontier.items():
        print("  %4.0f FPS -> %s" % (
            rate, "%d devices" % count if count else "infeasible"))

    # Validate the 24 FPS plan against the simulator.
    print("\nValidating the 24 FPS plan in the simulator...")
    config = SwarmConfig(workload=face_workload(),
                         workers={device_id: catalogue[device_id]
                                  for device_id in plan.device_ids},
                         source=profiles.device_profile("A"),
                         policy="LRS", duration=30.0, seed=0)
    result = run_swarm(config)
    verdict = "meets" if result.meets_input_rate() else "misses"
    print("simulated throughput: %.1f FPS (%s the 24 FPS target)"
          % (result.throughput, verdict))


if __name__ == "__main__":
    main()
