#!/usr/bin/env python
"""Collaborative voice translation — the paper's group-of-travelers scenario.

Travelers pool their phones to translate native speech in real time: one
phone captures audio, the swarm runs speech recognition (PocketSphinx
substitute) and English->Spanish translation (Apertium substitute), and
subtitles come back to the capturing phone's display.

Run with:  python examples/travelers_translation.py
"""

from repro.apps.translate.pipeline import build_translation_graph
from repro.runtime import SwingRuntime

UTTERANCES = 10


def main():
    print("Collaborative voice translation on a 2-phone swarm "
          "(%d utterances)" % UTTERANCES)
    graph = build_translation_graph(frame_count=UTTERANCES, seed=12)
    runtime = SwingRuntime(graph, worker_ids=["B", "G"], policy="LRS",
                           source_rate=15.0, seed=12)
    results = runtime.run(until_idle=1.0, timeout=120.0)

    microphone = runtime.master.runtime.unit("microphone")
    truth = microphone.ground_truth
    by_seq = {data.seq: data.get_value("text") for data in results}

    print()
    for seq, words in enumerate(truth):
        english = " ".join(words)
        spanish = by_seq.get(seq, "<lost>")
        print("  EN: %-38s ES: %s" % (english, spanish))

    delivered = len(results)
    print()
    print("delivered %d/%d utterances, in playback order: %s"
          % (delivered, UTTERANCES,
             [data.seq for data in results] == sorted(
                 data.seq for data in results)))


if __name__ == "__main__":
    main()
