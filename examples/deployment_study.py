#!/usr/bin/env python
"""Deployment study: splitting detect() and recognize() across devices.

Paper Sec. IV-A: expressing one compute-intensive operation as separate
function units "enables distributing computation load among multiple
devices".  This example runs the face pipeline's two compute stages in
three placements on the multi-stage simulator — LRS running at every
upstream instance, as in Fig. 3 — and prints where the tuples went.

Run with:  python examples/deployment_study.py
"""

from repro.simulation.pipeline import face_pipeline_config, run_pipeline
from repro.tools import format_table

DEPLOYMENTS = {
    "co-hosted (both stages everywhere)": (["F", "G", "H", "I"],
                                           ["F", "G", "H", "I"]),
    "disjoint (detect|recognize split)": (["G", "H"], ["F", "I"]),
    "funnel (3 detectors -> 1 recognizer)": (["F", "G", "I"], ["H"]),
}


def main():
    print("Face pipeline deployments at 24 FPS (LRS at every upstream)\n")
    rows = []
    details = {}
    for name, (detectors, recognizers) in DEPLOYMENTS.items():
        result = run_pipeline(face_pipeline_config(
            detectors, recognizers, duration=30.0, seed=1))
        rows.append((name, "%.1f" % result.throughput,
                     "%.0f ms" % (result.mean_latency * 1000),
                     "yes" if result.ordered else "no"))
        details[name] = result
    print(format_table(["deployment", "thr FPS", "latency", "ordered"],
                       rows, min_width=8))
    print()
    name = "funnel (3 detectors -> 1 recognizer)"
    print("tuple flow in the funnel deployment:")
    for instance, frames in sorted(details[name].per_instance_frames.items()):
        print("  %-16s %4d tuples" % (instance, frames))
    print()
    print("All placements meet the target: the routing layer balances")
    print("each stage independently over whatever replicas exist.")


if __name__ == "__main__":
    main()
