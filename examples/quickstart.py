#!/usr/bin/env python
"""Quickstart: define a Swing app, run it on a swarm, inspect results.

Covers the whole workflow in miniature:

1. compose a dataflow graph with the Swing API (paper Sec. IV-A);
2. run it on an in-process swarm of worker threads with the LRS policy;
3. run the same workload through the calibrated swarm *simulator* and
   compare LRS against the round-robin baseline.

Run with:  python examples/quickstart.py
"""

from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime import SwingRuntime
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm


def build_app(item_count=30):
    """A toy sensing app: source -> feature extractor -> sink."""
    payloads = [{"reading": float(i)} for i in range(item_count)]
    return (GraphBuilder("quickstart")
            .source("sensor", lambda: IterableSource(payloads))
            .unit("feature",
                  lambda: LambdaUnit(lambda v: {"energy": v["reading"] ** 2}))
            .sink("display", CollectingSink)
            .chain("sensor", "feature", "display")
            .build())


def run_threaded_swarm():
    print("== 1. Running on a swarm of worker threads (LRS) ==")
    runtime = SwingRuntime(build_app(), worker_ids=["B", "G", "H"],
                           policy="LRS", source_rate=120.0,
                           slowdowns={"B": 20.0})  # B is a slow device
    results = runtime.run(until_idle=0.5, timeout=30.0)
    energies = [data.get_value("energy") for data in results]
    print("results delivered: %d (in order: %s)"
          % (len(results), energies == sorted(energies)))
    for worker_id, worker in runtime.workers.items():
        print("  device %s processed %d tuples"
              % (worker_id, worker.processed_count))
    print()


def run_simulated_swarm():
    print("== 2. Simulating the paper's testbed (face recognition) ==")
    for policy in ("RR", "LRS"):
        result = run_swarm(scenarios.testbed(policy=policy, duration=30.0))
        print("  %-3s throughput %5.1f FPS   mean latency %6.0f ms   "
              "power %.2f W" % (policy, result.throughput,
                                result.latency.mean * 1000,
                                result.energy.aggregate_w))
    print()
    print("LRS reaches the 24 FPS smooth-video target; RR collapses on the")
    print("weak-signal devices — the paper's headline result.")


if __name__ == "__main__":
    run_threaded_swarm()
    run_simulated_swarm()
