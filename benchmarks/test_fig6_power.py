"""Fig. 6: estimated per-device CPU + Wi-Fi power and swarm aggregates.

Reproduces the paper's utilisation-driven power estimation: per device,
dynamic CPU power from measured utilisation and Wi-Fi power from the
measured data rate, with the aggregate printed atop each policy group.
"""

import pytest

from repro import profiles
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP, TRANSLATE_APP

from conftest import POLICIES

DEVICES = profiles.WORKER_IDS


def run_suite():
    return {(app, policy): run_swarm(
        scenarios.testbed(app=app, policy=policy, duration=60.0))
        for app in (FACE_APP, TRANSLATE_APP) for policy in POLICIES}


def test_fig6_power(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    paper_aggregate = {
        FACE_APP: {"RR": 2.35, "PR": 2.45, "LR": 3.44, "PRS": 1.88,
                   "LRS": 3.67},
        TRANSLATE_APP: {"RR": 5.44, "PR": 4.60, "LR": 4.35, "PRS": 3.76,
                        "LRS": 5.17},
    }

    for app, label in ((FACE_APP, "Face Recognition"),
                       (TRANSLATE_APP, "Voice Translation")):
        report.line("Fig. 6 — %s: per-device power (W, cpu+wifi)" % label)
        rows = []
        for policy in POLICIES:
            energy = results[(app, policy)].energy
            cells = ["%.2f" % energy.per_device[d].total_w for d in DEVICES]
            rows.append((policy, *cells,
                         "%.2f" % energy.aggregate_w,
                         "%.2f" % paper_aggregate[app][policy]))
        report.table(["policy", *DEVICES, "total", "paper"], rows, fmt="%6s")
        report.line("")

    face = {policy: results[(FACE_APP, policy)] for policy in POLICIES}
    # PRS consumes the least power among the selective policies; LRS the
    # most (it does the most useful work and uses every capable device).
    assert (face["PRS"].energy.aggregate_w
            < face["LRS"].energy.aggregate_w)
    assert face["LRS"].energy.aggregate_w == max(
        result.energy.aggregate_w for result in face.values())
    # CPU power dominates Wi-Fi power for these compute-bound apps.
    lrs = face["LRS"].energy
    cpu_total = sum(p.cpu_w for p in lrs.per_device.values())
    wifi_total = sum(p.wifi_w for p in lrs.per_device.values())
    assert cpu_total > wifi_total
    # Slow phone E draws disproportionate power per unit of work under RR.
    rr = face["RR"].energy.per_device
    completed = face["RR"].metrics
    e_work = completed.device("E").frames_completed or 1
    i_work = completed.device("I").frames_completed or 1
    assert rr["E"].cpu_w / e_work > rr["I"].cpu_w / i_work
