"""Scaling study: throughput and latency vs swarm size.

The paper's motivation: no single phone sustains the 24 FPS target
(Fig. 1), so devices must aggregate.  This bench grows the swarm one
device at a time (fastest-first, the order the planner would recruit
them) and reports when the target is reached and how latency falls.
"""

import pytest

from repro import profiles
from repro.simulation.swarm import SwarmConfig, run_swarm
from repro.simulation.workload import face_workload

#: fastest-first recruitment order (Table-I rates)
RECRUITMENT = ["H", "I", "G", "B", "F", "D", "C", "E"]


def run_suite():
    out = {}
    for count in range(1, len(RECRUITMENT) + 1):
        ids = RECRUITMENT[:count]
        config = SwarmConfig(workload=face_workload(),
                             workers=profiles.worker_profiles(ids),
                             source=profiles.device_profile("A"),
                             policy="LRS", duration=40.0, seed=1)
        out[count] = run_swarm(config)
    return out


def test_scaling(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Scaling study — LRS throughput vs swarm size "
                "(fastest-first recruitment, 24 FPS target)")
    rows = []
    for count, result in results.items():
        steady = result.steady_state_latency(warmup=5.0)
        rows.append((str(count),
                     "+" + RECRUITMENT[count - 1],
                     "%.1f" % result.throughput,
                     "%.0f" % ((steady.mean if steady else 0) * 1000),
                     "met" if result.meets_input_rate() else "missed",
                     "%.2f" % result.energy.aggregate_w))
    report.table(["devices", "added", "thr fps", "lat ms", "target",
                  "power W"], rows, fmt="%8s")

    throughputs = [results[count].throughput for count in results]
    # Throughput grows (weakly) with swarm size until the target caps it.
    assert throughputs[0] < throughputs[1] < throughputs[2]
    # One phone is far short of the target (Fig. 1's observation)...
    assert results[1].throughput < 24.0 * 0.75
    # ... but a handful of phones reach it.
    first_met = next(count for count in results
                     if results[count].meets_input_rate())
    assert first_met <= 4
    # Adding devices beyond the target never reduces throughput much.
    assert min(throughputs[first_met - 1:]) > 21.0