"""Scaling study: throughput and latency vs swarm size.

The paper's motivation: no single phone sustains the 24 FPS target
(Fig. 1), so devices must aggregate.  This bench grows the swarm one
device at a time (fastest-first, the order the planner would recruit
them) and reports when the target is reached and how latency falls.
"""

import json
import pathlib

import pytest

from repro import profiles
from repro.simulation import scenarios
from repro.simulation.swarm import SwarmConfig, run_swarm
from repro.simulation.workload import face_workload

#: fastest-first recruitment order (Table-I rates)
RECRUITMENT = ["H", "I", "G", "B", "F", "D", "C", "E"]

#: root-level trajectory artifacts (BENCH_<issue>.json per PR)
REPO_ROOT = pathlib.Path(__file__).parent.parent


def run_suite():
    out = {}
    for count in range(1, len(RECRUITMENT) + 1):
        ids = RECRUITMENT[:count]
        config = SwarmConfig(workload=face_workload(),
                             workers=profiles.worker_profiles(ids),
                             source=profiles.device_profile("A"),
                             policy="LRS", duration=40.0, seed=1)
        out[count] = run_swarm(config)
    return out


def test_scaling(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Scaling study — LRS throughput vs swarm size "
                "(fastest-first recruitment, 24 FPS target)")
    rows = []
    for count, result in results.items():
        steady = result.steady_state_latency(warmup=5.0)
        rows.append((str(count),
                     "+" + RECRUITMENT[count - 1],
                     "%.1f" % result.throughput,
                     "%.0f" % ((steady.mean if steady else 0) * 1000),
                     "met" if result.meets_input_rate() else "missed",
                     "%.2f" % result.energy.aggregate_w))
    report.table(["devices", "added", "thr fps", "lat ms", "target",
                  "power W"], rows, fmt="%8s")

    throughputs = [results[count].throughput for count in results]
    # Throughput grows (weakly) with swarm size until the target caps it.
    assert throughputs[0] < throughputs[1] < throughputs[2]
    # One phone is far short of the target (Fig. 1's observation)...
    assert results[1].throughput < 24.0 * 0.75
    # ... but a handful of phones reach it.
    first_met = next(count for count in results
                     if results[count].meets_input_rate())
    assert first_met <= 4
    # Adding devices beyond the target never reduces throughput much.
    assert min(throughputs[first_met - 1:]) > 21.0


# ---------------------------------------------------------------------------
# Tenant ramp: N pipelines over a fixed pool (ISSUE 7 trajectory bench).
# ---------------------------------------------------------------------------

TENANT_COUNTS = [1, 8, 32]
TENANT_POOL = ("B", "D", "G", "H")
TENANT_DURATION = 30.0


def _jain(values):
    """Jain's fairness index: 1.0 = perfectly even shares."""
    if not values or sum(values) == 0:
        return 0.0
    return (sum(values) ** 2) / (len(values) * sum(v * v for v in values))


def run_tenant_ramp():
    out = {}
    for count in TENANT_COUNTS:
        config = scenarios.tenants(duration=TENANT_DURATION, seed=1,
                                   worker_ids=TENANT_POOL,
                                   tenant_count=count)
        out[count] = run_swarm(config)
    return out


def test_tenant_ramp(benchmark, report):
    """Fan one app's 24 FPS budget out over 1 -> 8 -> 32 tenants.

    The pool is fixed and the *aggregate* offered rate is constant, so
    this isolates the cost of the multi-tenant control plane itself:
    per-tenant controllers, reorder/dedup state, fair-share bookkeeping.
    Aggregate throughput should hold and the even weights should yield
    an even split (Jain index ~= 1).
    """
    results = benchmark.pedantic(run_tenant_ramp, rounds=1, iterations=1)

    rows = []
    stats = {}
    for count, result in results.items():
        tenants = ["t%d" % index for index in range(count)]
        per_tenant = [result.tenant_throughput(t) for t in tenants]
        steady = result.steady_state_latency(warmup=5.0)
        fairness = _jain(per_tenant)
        stats[count] = {
            "aggregate_fps": round(result.throughput, 2),
            "mean_latency_ms": round((steady.mean if steady else 0.0)
                                     * 1000, 1),
            "fairness_jain": round(fairness, 4),
            "shed_total": sum(result.shed_by_reason.values()),
        }
        rows.append((str(count), "%.1f" % result.throughput,
                     "%.0f" % stats[count]["mean_latency_ms"],
                     "%.3f" % fairness,
                     str(stats[count]["shed_total"])))

    report.line("Tenant ramp — fixed pool %s, constant 24 FPS aggregate"
                % (TENANT_POOL,))
    report.table(["tenants", "thr fps", "lat ms", "jain", "shed"], rows,
                 fmt="%8s")

    bench = {
        "issue": 7,
        "pool": list(TENANT_POOL),
        "duration_s": TENANT_DURATION,
        "tenants": {str(count): stats[count] for count in TENANT_COUNTS},
        "aggregate_fps_ratio_32v1": round(
            stats[32]["aggregate_fps"] / stats[1]["aggregate_fps"], 3),
    }
    (REPO_ROOT / "BENCH_7.json").write_text(
        json.dumps(bench, indent=2) + "\n")

    # Splitting one workload across tenants must not sink throughput.
    # (At 32 tenants each source runs at 0.75 FPS, so per-tenant batching
    # and reorder hold times approach the 2 s TTL — the ~15% loss there
    # is TTL expiry at sub-FPS rates, not fair-share overhead.)
    assert stats[8]["aggregate_fps"] >= 0.95 * stats[1]["aggregate_fps"]
    assert stats[32]["aggregate_fps"] >= 0.80 * stats[1]["aggregate_fps"]
    # ...and equal weights must get equal service.
    for count in (8, 32):
        assert stats[count]["fairness_jain"] >= 0.9