"""Ablation: reorder-buffer timespan (Sec. IV-C, Fig. 8).

"A large buffer ensures better ordering but delays the display of the
results."  The paper fixes the buffer at one second of the source rate;
this bench sweeps the timespan and quantifies the ordering/delay
trade-off.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

TIMESPANS = [0.1, 0.5, 1.0, 2.0, 4.0]


def run_sweep():
    out = {}
    for timespan in TIMESPANS:
        config = scenarios.testbed(policy="LR", duration=45.0)
        config.reorder_timespan = timespan
        out[timespan] = run_swarm(config)
    return out


def test_ablation_reorder_buffer(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report.line("Ablation — reorder-buffer timespan (LR, face, 45 s)")
    rows = []
    for timespan, result in results.items():
        buffer = result.reorder
        rows.append(("%.1fs (%d)" % (timespan, buffer.capacity),
                     "%d" % buffer.total_skipped(),
                     "%.0f" % ((buffer.mean_buffering_delay() or 0) * 1000),
                     "%d" % buffer.stale_drops))
    report.table(["timespan", "skipped", "buf delay ms", "stale"], rows)

    # Ordering always holds regardless of buffer size.
    for result in results.values():
        assert result.reorder.is_monotonic()
    # Bigger buffers skip fewer slots but hold results longer.
    assert (results[4.0].reorder.total_skipped()
            <= results[0.1].reorder.total_skipped())
    assert ((results[4.0].reorder.mean_buffering_delay() or 0)
            >= (results[0.1].reorder.mean_buffering_delay() or 0))
