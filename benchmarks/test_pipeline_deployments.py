"""Deployment study: splitting a compute-intensive operation into units.

Paper Sec. IV-A: "Swing enables programmers to express a single
compute-intensive operation as separate function units, e.g. detect()
and recognize().  This enables distributing computation load among
multiple devices."  This bench compares deployments of the face app's
two compute stages across the same device set, with LRS running at
every upstream instance (Fig. 3's topology):

* **co-hosted** — both stages replicated on every device;
* **disjoint**  — detectors on half the devices, recognizers on the rest;
* **funnel**    — many detectors feeding one fast recognizer.
"""

import pytest

from repro.simulation.pipeline import face_pipeline_config, run_pipeline

DEPLOYMENTS = {
    "co-hosted": (["F", "G", "H", "I"], ["F", "G", "H", "I"]),
    "disjoint": (["G", "H"], ["F", "I"]),
    "funnel": (["F", "G", "I"], ["H"]),
}


def run_suite():
    return {name: run_pipeline(face_pipeline_config(
        detectors, recognizers, duration=40.0, seed=1))
        for name, (detectors, recognizers) in DEPLOYMENTS.items()}


def test_pipeline_deployments(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Deployment study — detector/recognizer placement "
                "(face, 24 FPS, LRS at every upstream)")
    rows = []
    for name, result in results.items():
        rows.append((name,
                     "%.1f" % result.throughput,
                     "%.0f" % ((result.mean_latency or 0) * 1000),
                     "%d/%d" % (result.completed, result.generated)))
    report.table(["deployment", "thr fps", "lat ms", "done/gen"], rows,
                 fmt="%10s")
    report.line("")
    best = results["co-hosted"]
    for instance, frames in sorted(best.per_instance_frames.items()):
        report.line("  co-hosted %-14s %4d frames" % (instance, frames))

    # Every deployment of the split operation sustains the target
    # (aggregate capacity is ample); playback stays ordered.
    for name, result in results.items():
        assert result.throughput > 21.0, name
        assert result.ordered, name
    # The funnel's lone recognizer handles everything the detectors emit.
    funnel = results["funnel"]
    assert funnel.per_instance_frames["recognizer@H"] >= \
        funnel.completed
    # Co-hosting gives the policies the most freedom: its latency is not
    # worse than the funnel's.
    assert (results["co-hosted"].mean_latency
            <= results["funnel"].mean_latency * 1.5)
