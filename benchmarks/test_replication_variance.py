"""Seed-replication study: how stable are the headline numbers?

The paper reports single testbed sessions; this bench replicates the
Fig. 4 face experiment across seeds and reports mean ± 95% CI for the
headline metrics, confirming the LRS-over-RR gap is not a seed artifact.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.replication import compare_policies

SEEDS = [0, 1, 2, 3, 4]
POLICIES = ["RR", "PR", "LR", "PRS", "LRS"]


def run_suite():
    return compare_policies(
        lambda policy: scenarios.testbed(policy=policy, duration=60.0),
        POLICIES, SEEDS)


def test_replication_variance(benchmark, report):
    outcomes = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Replication study — Fig. 4 face metrics over %d seeds"
                % len(SEEDS))
    rows = []
    for policy in POLICIES:
        replicated = outcomes[policy]
        throughput = replicated.throughput()
        latency = replicated.latency_mean()
        rows.append((policy,
                     "%.1f ± %.1f" % (throughput.mean,
                                      throughput.ci95_halfwidth),
                     "%.2f ± %.2f" % (latency.mean,
                                      latency.ci95_halfwidth)))
    report.table(["policy", "thr fps (95% CI)", "latency s (95% CI)"],
                 rows, fmt="%20s")

    rr = outcomes["RR"]
    lrs = outcomes["LRS"]
    # The LRS-over-RR throughput gap holds with confidence: the CIs of
    # the two policies must not overlap.
    rr_high = rr.throughput().interval()[1]
    lrs_low = lrs.throughput().interval()[0]
    assert lrs_low > rr_high
    # Latency gap likewise.
    assert lrs.latency_mean().interval()[1] < rr.latency_mean().interval()[0]
    # Per-seed, LRS always wins on both metrics.
    for rr_run, lrs_run in zip(rr.results, lrs.results):
        assert lrs_run.throughput > rr_run.throughput
        assert lrs_run.latency.mean < rr_run.latency.mean