"""Extension study: JSQ and WRR against the paper's policies.

Beyond the paper: join-shortest-queue (instantaneous backlog signal) and
static weighted round robin (offline capability profiling, no runtime
adaptation) on the same testbed.  JSQ's backlog signal reacts to
congestion like LRS's latency signal; WRR shows why offline profiles
alone cannot cope with network heterogeneity.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

POLICIES = ["RR", "WRR", "JSQ", "LRS"]


def run_suite():
    return {policy: run_swarm(scenarios.testbed(policy=policy,
                                                duration=60.0))
            for policy in POLICIES}


def test_extension_policies(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Extension study — backlog/static policies vs LRS "
                "(face, 60 s)")
    rows = []
    for policy in POLICIES:
        result = results[policy]
        rates = result.input_rates()
        weak = rates["B"] + rates["C"] + rates["D"]
        rows.append((policy,
                     "%.1f" % result.throughput,
                     "%.0f" % (result.latency.mean * 1000),
                     "%.1f" % weak,
                     "%.2f" % result.fps_per_watt()))
    report.table(["policy", "thr fps", "lat ms", "to-weak fps", "fps/W"],
                 rows)

    # JSQ's backlog signal also avoids clogged weak links: it must beat
    # RR clearly and come close to LRS.
    assert results["JSQ"].throughput > 1.5 * results["RR"].throughput
    assert results["JSQ"].throughput > 0.85 * results["LRS"].throughput
    # WRR adapts capability but not network state: better than RR,
    # worse than the adaptive policies.
    assert results["WRR"].throughput >= results["RR"].throughput * 0.9
    assert results["WRR"].throughput < results["LRS"].throughput
