"""Cloudlet mode (paper Sec. II): the swarm plus fixed infrastructure.

"Swing does support 'cloudlet mode' through Android virtual machines if
a cloudlet infrastructure is available."  The cloudlet is just one more
(very fast, wall-powered) worker: no policy changes needed.  This bench
quantifies what the phones-only swarm gives up relative to having edge
infrastructure — and what it saves in deployment cost.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP, TRANSLATE_APP


def run_suite():
    out = {}
    for app in (FACE_APP, TRANSLATE_APP):
        out[(app, "phones")] = run_swarm(
            scenarios.testbed(app=app, policy="LRS", duration=60.0))
        out[(app, "cloudlet")] = run_swarm(
            scenarios.cloudlet_mode(app=app, policy="LRS", duration=60.0))
    return out


def test_cloudlet_mode(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Cloudlet mode — phones-only swarm vs swarm + cloudlet VM")
    rows = []
    for app in (FACE_APP, TRANSLATE_APP):
        for setup in ("phones", "cloudlet"):
            result = results[(app, setup)]
            rows.append(("%s/%s" % (app.split("_")[0], setup),
                         "%.1f" % result.throughput,
                         "%.0f" % (result.latency.mean * 1000),
                         "%.2f" % result.energy.aggregate_w))
    report.table(["setup", "thr fps", "lat ms", "power W"], rows, fmt="%16s")

    for app in (FACE_APP, TRANSLATE_APP):
        phones = results[(app, "phones")]
        assisted = results[(app, "cloudlet")]
        # The cloudlet absorbs the stream: latency collapses toward its
        # processing delay; throughput at (or above) the phones-only level.
        assert assisted.latency.mean < phones.latency.mean / 2
        assert assisted.throughput >= phones.throughput * 0.95
        # LRS discovers the cloudlet with no configuration: it ends up
        # the most-loaded worker.
        rates = assisted.input_rates()
        assert rates["CL"] == max(rates.values())
