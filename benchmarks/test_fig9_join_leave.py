"""Fig. 9: throughput while devices join and leave at run time.

Joining: B and D compute; G joins mid-run and throughput rises to the
24 FPS target within about a second.  Leaving: B, G, H compute; G is
killed; some in-flight frames are lost (13 in the paper) and throughput
recovers to what the remaining devices sustain within about a second.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.metrics import DROP_DEVICE_LEFT, DROP_LINK_DOWN
from repro.simulation.swarm import run_swarm

JOIN_TIME = 10.0
LEAVE_TIME = 15.0


def run_both():
    joining = run_swarm(scenarios.joining(duration=30.0, join_time=JOIN_TIME,
                                          seed=2))
    leaving = run_swarm(scenarios.leaving(duration=35.0,
                                          leave_time=LEAVE_TIME, seed=3))
    return joining, leaving


def test_fig9_join_leave(benchmark, report):
    joining, leaving = benchmark.pedantic(run_both, rounds=1, iterations=1)

    join_series = joining.throughput_series()
    leave_series = leaving.throughput_series()
    report.line("Fig. 9 — throughput when a device joins / leaves (FPS/s)")
    report.series("joining (G arrives at t=%ds)" % JOIN_TIME, join_series)
    report.line("")
    report.series("leaving (G killed at t=%ds)" % LEAVE_TIME, leave_series)
    lost = (leaving.metrics.dropped.get(DROP_DEVICE_LEFT, 0)
            + leaving.metrics.dropped.get(DROP_LINK_DOWN, 0))
    report.line("")
    report.line("frames lost in the leave transition: %d (paper: 13)" % lost)

    # Joining: B+D alone cannot reach 24 FPS; with G the system does.
    before = sum(join_series[5:10]) / 5
    after = sum(join_series[15:30]) / 15
    assert before < 21.0
    assert after > before + 2.0
    assert max(join_series[int(JOIN_TIME):]) >= 22.0
    # Recovery is fast: within ~2 s of the join the rate jumped.
    assert join_series[int(JOIN_TIME) + 2] > before

    # Leaving: a visible dip at the leave, bounded losses, then recovery
    # to what B+H can sustain.
    dip_window = leave_series[int(LEAVE_TIME):int(LEAVE_TIME) + 2]
    steady_before = sum(leave_series[8:14]) / 6
    assert min(dip_window) < steady_before
    assert 1 <= lost <= 40
    recovered = sum(leave_series[25:33]) / 8
    assert recovered >= 12.0
    # The departed device serves nothing after the link break is detected.
    per_device = leaving.metrics.per_device_throughput_series(35.0)
    assert sum(per_device["G"][int(LEAVE_TIME) + 2:]) == 0.0
