"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes
its rows/series to ``benchmarks/results/<name>.txt`` (also printed, so
``pytest benchmarks/ --benchmark-only -s`` shows them inline).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

POLICIES = ["RR", "PR", "LR", "PRS", "LRS"]


class Report:
    """Collects lines for one experiment's output artifact."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers, rows, fmt="%10s") -> None:
        self.line(" ".join(fmt % header for header in headers))
        for row in rows:
            self.line(" ".join(fmt % cell for cell in row))

    def series(self, label, values, per_line=12) -> None:
        self.line("%s:" % label)
        for start in range(0, len(values), per_line):
            chunk = values[start:start + per_line]
            self.line("  " + " ".join("%6.1f" % value for value in chunk))

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(self.lines) + "\n"
        (RESULTS_DIR / ("%s.txt" % self.name)).write_text(text)
        print("\n" + text)


@pytest.fixture
def report(request):
    rep = Report(request.node.name.replace("[", "_").replace("]", ""))
    yield rep
    rep.flush()


@pytest.fixture(scope="session")
def testbed_results():
    """The Sec. VI-B routing-comparison runs, shared by Figs. 4-8 benches."""
    from repro.simulation import scenarios
    from repro.simulation.swarm import run_swarm
    from repro.simulation.workload import FACE_APP, TRANSLATE_APP

    results = {}
    for app in (FACE_APP, TRANSLATE_APP):
        for policy in POLICIES:
            results[(app, policy)] = run_swarm(
                scenarios.testbed(app=app, policy=policy, duration=60.0))
    return results
