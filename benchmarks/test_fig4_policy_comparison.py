"""Fig. 4: throughput and per-frame latency of the five routing policies.

The headline experiment: nine devices, B/C/D at poor-signal locations,
both sensing apps, policies RR / PR / LR / PRS / LRS.  The paper reports
average system throughput and the min/max/average/variance of per-frame
latency; LRS wins with 2.7x RR's throughput and 6.7x lower latency.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP, TRANSLATE_APP

from conftest import POLICIES

DURATION = 60.0


def run_suite():
    return {(app, policy): run_swarm(
        scenarios.testbed(app=app, policy=policy, duration=DURATION))
        for app in (FACE_APP, TRANSLATE_APP) for policy in POLICIES}


def test_fig4_policy_comparison(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    for app, label in ((FACE_APP, "Face Recognition"),
                       (TRANSLATE_APP, "Voice Translation")):
        report.line("Fig. 4 — %s" % label)
        rows = []
        for policy in POLICIES:
            result = results[(app, policy)]
            latency = result.latency
            rows.append((policy,
                         "%.1f" % result.throughput,
                         "%.0f" % (latency.mean * 1000),
                         "%.0f" % (latency.minimum * 1000),
                         "%.0f" % (latency.maximum * 1000),
                         "%.2f" % latency.variance))
        report.table(["policy", "thr fps", "lat ms", "min ms", "max ms",
                      "var s^2"], rows)
        report.line("")

    face = {policy: results[(FACE_APP, policy)] for policy in POLICIES}
    gain = face["LRS"].throughput / face["RR"].throughput
    reduction = face["RR"].latency.mean / face["LRS"].latency.mean
    report.line("LRS vs RR (face): %.1fx throughput (paper 2.7x), "
                "%.1fx latency reduction (paper 6.7x)" % (gain, reduction))

    # Paper claims, as assertions:
    assert 1.8 <= gain <= 4.0
    assert reduction >= 4.0
    assert face["LRS"].meets_input_rate(tolerance=0.10)
    assert face["PR"].throughput < 24.0 * 0.75       # P* fail the target
    assert face["LR"].latency.mean < face["PR"].latency.mean
    assert face["LRS"].latency.mean <= face["PRS"].latency.mean
    trans = {policy: results[(TRANSLATE_APP, policy)] for policy in POLICIES}
    assert trans["LRS"].throughput > trans["RR"].throughput * 1.5
    assert trans["LRS"].throughput == max(r.throughput
                                          for r in trans.values())
