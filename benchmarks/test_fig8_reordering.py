"""Fig. 8: tuple arrival order and reorder-buffer playback.

Tuples leave the source in sequence but arrive at the sink shuffled by
heterogeneity; the sink's one-second reorder buffer restores order.
Policies with Worker Selection, and LRS in particular, produce smoother
playback because they use fewer devices with smaller latency variance.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP

from conftest import POLICIES

DURATION = 30.0


def inversion_count(seqs):
    """Number of adjacent out-of-order arrival pairs (disorder metric)."""
    return sum(1 for a, b in zip(seqs, seqs[1:]) if b < a)


def run_suite():
    out = {}
    for policy in POLICIES:
        result = run_swarm(scenarios.testbed(app=FACE_APP, policy=policy,
                                             duration=DURATION))
        arrivals = [record.seq for record in result.metrics.arrival_order()]
        out[policy] = {
            "result": result,
            "arrivals": arrivals,
            "inversions": inversion_count(arrivals),
            "skipped": result.reorder.total_skipped(),
            "buffer_delay": result.reorder.mean_buffering_delay() or 0.0,
        }
    return out


def test_fig8_reordering(benchmark, report):
    data = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Fig. 8 — ordering of frames at the sink (face recognition,"
                " 24-frame / 1 s reorder buffer)")
    rows = []
    for policy in POLICIES:
        entry = data[policy]
        arrived = len(entry["arrivals"])
        rows.append((policy,
                     "%d" % arrived,
                     "%d" % entry["inversions"],
                     "%.3f" % (entry["inversions"] / max(1, arrived)),
                     "%d" % entry["skipped"],
                     "%.0f" % (entry["buffer_delay"] * 1000)))
    report.table(["policy", "arrived", "inversions", "inv rate",
                  "skipped", "buf ms"], rows)
    report.line("")
    report.line("first 24 arrival seqs per policy (gray dots of Fig. 8):")
    for policy in POLICIES:
        report.series(policy, [float(s) for s in data[policy]["arrivals"][:24]])

    # Playback is always monotonic — the Reordering Service's contract.
    for policy in POLICIES:
        assert data[policy]["result"].reorder.is_monotonic()
    # LRS's arrival stream is the most orderly of the latency policies,
    # and far more orderly than RR's (the paper's scattered gray dots).
    assert (data["LRS"]["inversions"] / max(1, len(data["LRS"]["arrivals"]))
            < data["RR"]["inversions"] / max(1, len(data["RR"]["arrivals"])))
    # Selection reduces skipped (lost-slot) frames vs. the same policy
    # without selection.
    assert data["LRS"]["skipped"] <= data["LR"]["skipped"]
    assert data["LRS"]["skipped"] <= data["RR"]["skipped"]
