"""Fig. 7: energy efficiency (FPS per Watt) of the routing policies.

Throughput (Fig. 4) divided by aggregate power (Fig. 6).  Worker
Selection greatly improves efficiency; LRS is the only policy that also
meets the real-time rate target, making it preferable overall.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP, TRANSLATE_APP

from conftest import POLICIES


def run_suite():
    return {(app, policy): run_swarm(
        scenarios.testbed(app=app, policy=policy, duration=60.0))
        for app in (FACE_APP, TRANSLATE_APP) for policy in POLICIES}


def test_fig7_efficiency(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Fig. 7 — efficiency of routing schemes (FPS per Watt)")
    rows = []
    for policy in POLICIES:
        rows.append((policy,
                     "%.2f" % results[(FACE_APP, policy)].fps_per_watt(),
                     "%.2f" % results[(TRANSLATE_APP, policy)].fps_per_watt()))
    report.table(["policy", "face", "translation"], rows)

    face = {p: results[(FACE_APP, p)].fps_per_watt() for p in POLICIES}
    trans = {p: results[(TRANSLATE_APP, p)].fps_per_watt() for p in POLICIES}

    # Worker Selection (*S) greatly improves energy efficiency.
    assert face["PRS"] > face["PR"]
    assert face["LRS"] > face["LR"] * 0.95
    assert trans["PRS"] > trans["PR"]
    # LRS clearly beats the RR baseline on both apps.
    assert face["LRS"] > 1.3 * face["RR"]
    assert trans["LRS"] > 1.3 * trans["RR"]
    # Paper: LRS "is slightly worse than PRS in the voice translation app".
    assert trans["LRS"] <= trans["PRS"] * 1.15
