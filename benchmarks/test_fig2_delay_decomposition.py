"""Fig. 2: decomposition of remote-processing delays on one device.

Three sweeps against worker B: Wi-Fi signal strength drives transmission
delay, background CPU usage drives processing delay, and the input rate
drives queuing delay.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.network import rssi_for_region
from repro.simulation.swarm import run_swarm

SIGNALS = ["good", "fair", "poor"]
CPU_LOADS = [0.2, 0.6, 1.0]
RATES = [5.0, 10.0, 20.0]


def run_case(rssi="good", background=0.0, rate=4.0, duration=15.0):
    config = scenarios.single_device(
        "B", input_rate=rate, duration=duration,
        rssi=rssi_for_region(rssi), background_load=background, seed=0)
    result = run_swarm(config)
    return result.metrics.delay_decomposition()


def run_all():
    return {
        "signal": {name: run_case(rssi=name) for name in SIGNALS},
        "cpu": {load: run_case(background=load, rate=1.5)
                for load in CPU_LOADS},
        "rate": {rate: run_case(rate=rate) for rate in RATES},
    }


def test_fig2_delay_decomposition(benchmark, report):
    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report.line("Fig. 2: decomposition of remote face-recognition delays (ms)")
    report.line("")
    report.line("-- signal strength sweep (input 4 FPS) --")
    rows = [(name,
             "%.0f" % (d["transmission"] * 1000),
             "%.0f" % (d["processing"] * 1000),
             "%.0f" % (d["queuing"] * 1000))
            for name, d in sweeps["signal"].items()]
    report.table(["signal", "transmission", "processing", "queuing"], rows)
    report.line("")
    report.line("-- background CPU sweep (input 1.5 FPS) --")
    rows = [("%d%%" % (load * 100),
             "%.0f" % (d["transmission"] * 1000),
             "%.0f" % (d["processing"] * 1000))
            for load, d in sweeps["cpu"].items()]
    report.table(["cpu load", "transmission", "processing"], rows)
    report.line("")
    report.line("-- input rate sweep (good signal) --")
    rows = [("%d FPS" % rate,
             "%.0f" % (d["transmission"] * 1000),
             "%.0f" % (d["processing"] * 1000),
             "%.0f" % (d["queuing"] * 1000))
            for rate, d in sweeps["rate"].items()]
    report.table(["rate", "transmission", "processing", "queuing"], rows)

    signal = sweeps["signal"]
    # Weaker signal => transmission delay dominates and grows sharply.
    assert (signal["poor"]["transmission"]
            > 10 * signal["good"]["transmission"])
    assert signal["fair"]["transmission"] > signal["good"]["transmission"]
    # Signal barely affects processing.
    assert signal["poor"]["processing"] == pytest.approx(
        signal["good"]["processing"], rel=0.2)

    cpu = sweeps["cpu"]
    # More background load => longer processing delay (paper: ~6x at 100%).
    assert cpu[1.0]["processing"] > 3 * cpu[0.2]["processing"]
    assert cpu[0.6]["processing"] > cpu[0.2]["processing"]

    rate = sweeps["rate"]
    # Input beyond B's ~10 FPS capacity => queuing delay explodes.
    assert rate[20.0]["queuing"] > 10 * max(rate[5.0]["queuing"], 0.001)
    assert rate[5.0]["queuing"] < 0.2
