"""Application-quality studies of the rebuilt sensing apps.

The reproduction's detector/recognizer/ASR are real algorithms with
real operating points; these benches characterize them the way the
original components (OpenCV cascades, PocketSphinx) are characterized:
a detection threshold sweep and an ASR noise-robustness sweep.
"""

import pytest

from repro.apps.face.detect import FaceDetector
from repro.apps.face.images import FaceGenerator, FrameSynthesizer
from repro.apps.translate.asr import SpeechRecognizer
from repro.apps.translate.audio import synthesize_utterance
from repro.apps.translate.pipeline import default_phrases
from repro.apps.translate.translator import Translator

THRESHOLDS = [0.35, 0.45, 0.55, 0.65, 0.75]
NOISE_LEVELS = [0.01, 0.05, 0.10, 0.20, 0.35]


def detection_sweep():
    generator = FaceGenerator(5, seed=3)
    synth = FrameSynthesizer(generator, seed=3)
    frames = [synth.frame(face_count=1) for _ in range(25)]
    empties = [synth.frame(face_count=0)[0] for _ in range(25)]
    out = {}
    for threshold in THRESHOLDS:
        detector = FaceDetector(generator, threshold=threshold)
        hits = 0
        for image, placements in frames:
            detections = detector.detect(image)
            placement = placements[0]
            if any(abs(d.x - placement.x) <= 8 and abs(d.y - placement.y) <= 8
                   for d in detections):
                hits += 1
        false_positives = sum(len(detector.detect(image))
                              for image in empties)
        out[threshold] = (hits / len(frames),
                          false_positives / len(empties))
    return out


def asr_sweep():
    recognizer = SpeechRecognizer(Translator().vocabulary())
    phrases = default_phrases(20, seed=4)
    out = {}
    for noise in NOISE_LEVELS:
        correct = total = 0
        for index, phrase in enumerate(phrases):
            waveform = synthesize_utterance(phrase, noise=noise, seed=index)
            recognized = recognizer.recognize(waveform)
            total += len(phrase)
            correct += sum(1 for a, b in zip(phrase, recognized) if a == b)
        out[noise] = correct / total
    return out


def test_app_quality(benchmark, report):
    detection, asr = benchmark.pedantic(
        lambda: (detection_sweep(), asr_sweep()), rounds=1, iterations=1)

    report.line("Face detector — NCC threshold sweep (25 frames each)")
    report.table(["threshold", "recall", "FP/frame"],
                 [("%.2f" % threshold, "%.2f" % recall, "%.2f" % fp)
                  for threshold, (recall, fp) in detection.items()])
    report.line("")
    report.line("Speech recognizer — noise robustness (word accuracy)")
    report.table(["noise sigma", "accuracy"],
                 [("%.2f" % noise, "%.2f" % accuracy)
                  for noise, accuracy in asr.items()])

    # Recall decreases monotonically-ish with threshold; FP too.
    recalls = [detection[t][0] for t in THRESHOLDS]
    fps = [detection[t][1] for t in THRESHOLDS]
    assert recalls[0] >= recalls[-1]
    assert fps[0] >= fps[-1]
    # The default operating point (0.55) is usable: high recall, few FPs.
    recall, fp = detection[0.55]
    assert recall >= 0.9
    assert fp <= 0.2
    # ASR is near-perfect at capture noise and degrades gracefully.
    assert asr[0.01] >= 0.95
    assert asr[0.35] <= asr[0.01]
