"""Fig. 5: per-device CPU utilisation and input data rate per policy.

RR spreads data evenly; weak processors burn a larger CPU share for the
same load; L* policies starve the poor-signal devices (B, C, D) and the
straggler-prone ones (E, F); *S policies concentrate on a selected
subset.
"""

import pytest

from repro import profiles
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm
from repro.simulation.workload import FACE_APP, TRANSLATE_APP

from conftest import POLICIES

DEVICES = profiles.WORKER_IDS


def run_suite():
    return {(app, policy): run_swarm(
        scenarios.testbed(app=app, policy=policy, duration=60.0))
        for app in (FACE_APP, TRANSLATE_APP) for policy in POLICIES}


def test_fig5_cpu_and_load(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    for app, label in ((FACE_APP, "Face Recognition"),
                       (TRANSLATE_APP, "Voice Translation")):
        report.line("Fig. 5 — %s: CPU usage (%%)" % label)
        rows = []
        for policy in POLICIES:
            cpu = results[(app, policy)].metrics.per_device_cpu_utilization(
                60.0, overheads={d: 0.08 for d in DEVICES})
            rows.append((policy, *("%.0f" % (cpu[d] * 100) for d in DEVICES)))
        report.table(["policy", *DEVICES], rows, fmt="%6s")
        report.line("")
        report.line("Fig. 5 — %s: input frame rate (FPS)" % label)
        rows = []
        for policy in POLICIES:
            rates = results[(app, policy)].input_rates()
            rows.append((policy, *("%.1f" % rates[d] for d in DEVICES)))
        report.table(["policy", *DEVICES], rows, fmt="%6s")
        report.line("")

    face_rr = results[(FACE_APP, "RR")].input_rates()
    # RR sends an equal amount of data to each device.
    assert max(face_rr.values()) - min(face_rr.values()) < 0.5

    face_rr_cpu = results[(FACE_APP, "RR")].cpu_utilization()
    # Weak processor E burns a much larger share than strong I for the
    # same offered load.
    assert face_rr_cpu["E"] > 2.5 * face_rr_cpu["I"]

    face_lrs = results[(FACE_APP, "LRS")].input_rates()
    # LRS minimizes usage of the poor-signal devices B, C, D.
    weak = (face_lrs["B"] + face_lrs["C"] + face_lrs["D"]) / 3
    strong = (face_lrs["G"] + face_lrs["H"] + face_lrs["I"]) / 3
    assert weak < strong / 2.5
    # ... and of the straggler E.
    assert face_lrs["E"] < face_lrs["H"] / 2

    face_prs = results[(FACE_APP, "PRS")].input_rates()
    # *S policies select a subset: most devices see almost no traffic.
    quiet = sum(1 for rate in face_prs.values() if rate < 1.0)
    assert quiet >= 4
