"""Framework throughput on real threads (the implementation itself).

The other benches measure the *modelled* swarm; this one measures the
actual Python runtime: how many tuples per second the master/worker
implementation moves end-to-end through serialization, the fabric,
dispatch, processing and ACKs — the paper's "negligible overhead" claim
applied to this codebase.
"""

import time

import pytest

from repro.core.function_unit import (CollectingSink, IterableSource,
                                      LambdaUnit)
from repro.core.graph import GraphBuilder
from repro.runtime.app_runner import SwingRuntime

ITEMS = 400


def build_graph(items=ITEMS):
    return (GraphBuilder("throughput")
            .source("src", lambda: IterableSource(
                [{"x": i, "pad": b"\x00" * 6000} for i in range(items)]))
            .unit("f", lambda: LambdaUnit(lambda v: {"y": v["x"]}))
            .sink("snk", CollectingSink)
            .chain("src", "f", "snk")
            .build())


def drive_runtime():
    runtime = SwingRuntime(build_graph(), worker_ids=["B", "C"],
                           policy="LRS", source_rate=100_000.0)
    started = time.monotonic()
    results = runtime.run(until_idle=0.4, timeout=120.0)
    elapsed = time.monotonic() - started
    return len(results), elapsed


def test_runtime_throughput(benchmark, report):
    delivered, elapsed = benchmark.pedantic(drive_runtime, rounds=1,
                                            iterations=1)
    # until_idle adds a fixed 0.4 s tail; subtract it for the rate.
    active = max(0.05, elapsed - 0.4)
    rate = delivered / active
    report.line("Threaded-runtime throughput (6 kB tuples, 2 workers, LRS)")
    report.line("  delivered %d/%d tuples in %.2f s  ->  %.0f tuples/s"
                % (delivered, ITEMS, active, rate))

    assert delivered == ITEMS
    # The framework must comfortably exceed the paper's 24 FPS regime on
    # commodity hardware — three orders of magnitude of headroom is
    # normal here; assert a conservative floor.
    assert rate > 240.0
