"""Ablation: latency-estimator choice (Sec. V-B).

The paper estimates L_i as "a moving average of latency estimates".
This bench sweeps the moving-average window and compares against EWMA
smoothing, measuring how the estimator's memory affects LRS.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

WINDOWS = [5, 20, 80]
ALPHAS = [0.1, 0.5]


def run_sweep():
    out = {}
    for window in WINDOWS:
        config = scenarios.testbed(policy="LRS", duration=60.0)
        config.estimator = "moving-average"
        config.estimator_window = window
        out[("ma", window)] = run_swarm(config)
    for alpha in ALPHAS:
        config = scenarios.testbed(policy="LRS", duration=60.0)
        config.estimator = "ewma"
        out[("ewma", alpha)] = run_swarm(config)
    return out


def test_ablation_estimators(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report.line("Ablation — latency estimator for LRS (face, 60 s)")
    rows = []
    for (kind, param), result in results.items():
        label = ("MA w=%d" % param) if kind == "ma" else ("EWMA a=%s" % param)
        rows.append((label,
                     "%.1f" % result.throughput,
                     "%.0f" % (result.latency.mean * 1000),
                     "%.2f" % result.latency.variance))
    report.table(["estimator", "thr fps", "lat ms", "var"], rows)

    # The algorithm is robust to the estimator choice: all variants stay
    # near the target.
    for result in results.values():
        assert result.throughput > 20.0
        assert result.latency.mean < 2.0
