"""Table I: performance heterogeneity of the testbed devices.

The paper streams 24 FPS video to each phone in turn and reports the
mean per-frame processing delay (excluding queuing) and the resulting
throughput.  We regenerate both rows from the calibrated device models.
"""

import pytest

from repro import profiles
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

PAPER_DELAY_MS = {"B": 92.9, "C": 121.6, "D": 167.7, "E": 463.4,
                  "F": 166.4, "G": 82.2, "H": 71.3, "I": 78.0}
PAPER_FPS = profiles.TABLE1_THROUGHPUT_FPS


def measure_device(device_id):
    config = scenarios.single_device(device_id, input_rate=24.0,
                                     duration=20.0, seed=0)
    result = run_swarm(config)
    completed = result.metrics.completed_frames()
    delays = [record.processing_delay for record in completed
              if record.processing_delay is not None]
    mean_delay = sum(delays) / len(delays)
    return mean_delay, 1.0 / mean_delay


def test_table1_heterogeneity(benchmark, report):
    measured = benchmark.pedantic(
        lambda: {device_id: measure_device(device_id)
                 for device_id in profiles.WORKER_IDS},
        rounds=1, iterations=1)

    report.line("Table I: Performance Heterogeneity (paper vs. measured)")
    rows = []
    for device_id in profiles.WORKER_IDS:
        delay, fps = measured[device_id]
        rows.append((device_id,
                     "%.1f" % PAPER_DELAY_MS[device_id],
                     "%.1f" % (delay * 1000.0),
                     "%d" % PAPER_FPS[device_id],
                     "%.1f" % fps))
    report.table(["phone", "paper ms", "ours ms", "paper fps", "ours fps"],
                 rows)

    for device_id in profiles.WORKER_IDS:
        delay, fps = measured[device_id]
        # Mean measured delay within 10% of Table I (jitter is real).
        assert delay * 1000.0 == pytest.approx(PAPER_DELAY_MS[device_id],
                                               rel=0.10)
    # Orderings: H fastest, E slowest, ~6x apart.
    assert measured["H"][1] == max(m[1] for m in measured.values())
    assert measured["E"][1] == min(m[1] for m in measured.values())
    assert 5.0 <= measured["H"][1] / measured["E"][1] <= 8.0
