"""Ablation: round-robin probing of unselected workers (Sec. V-B).

The paper keeps unselected workers' estimates fresh by "switching
periodically every few rounds to round robin mode for a short time".
This bench sweeps the probing period and burst size, including probing
disabled entirely, and reports LRS throughput/latency under each — the
design-choice ablation DESIGN.md calls out.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

#: (probe_every rounds, probe tuples per burst)
SETTINGS = [(5, 0), (2, 4), (5, 4), (10, 4), (5, 12)]


def run_sweep():
    out = {}
    for probe_every, probe_tuples in SETTINGS:
        config = scenarios.testbed(policy="LRS", duration=60.0)
        config.probe_every = probe_every
        config.probe_tuples = probe_tuples
        out[(probe_every, probe_tuples)] = run_swarm(config)
    return out


def test_ablation_probing(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report.line("Ablation — probing period/burst for LRS (face, 60 s)")
    rows = []
    for (probe_every, probe_tuples), result in results.items():
        label = ("off" if probe_tuples == 0
                 else "every %dr x%d" % (probe_every, probe_tuples))
        rows.append((label,
                     "%.1f" % result.throughput,
                     "%.0f" % (result.latency.mean * 1000),
                     "%d" % result.frames_lost))
    report.table(["probing", "thr fps", "lat ms", "lost"], rows)

    # Every configuration keeps the system near the 24 FPS target: the
    # probing overhead itself must be small.
    for result in results.values():
        assert result.throughput > 20.0
    # Aggressive probing (large bursts onto weak links) costs latency
    # relative to moderate probing.
    moderate = results[(5, 4)]
    aggressive = results[(5, 12)]
    assert moderate.latency.mean <= aggressive.latency.mean * 1.5
