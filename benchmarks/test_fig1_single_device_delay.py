"""Fig. 1: per-frame delay build-up on individual devices at 24 FPS.

No single phone sustains 24 FPS, so frames queue and the end-to-end
delay per frame climbs within seconds — the motivating observation of
the paper.  We replay the experiment with unbounded queues and report
the delay of the frames completing around each second mark.
"""

import pytest

from repro import profiles
from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

DURATION = 5.0


def delay_series(device_id):
    config = scenarios.single_device(device_id, input_rate=24.0,
                                     duration=DURATION, seed=0)
    result = run_swarm(config)
    completed = result.metrics.completed_frames()
    # Delay of the last frame completed before each second mark.
    series = []
    for mark in (1.0, 2.0, 3.0, 4.0, 5.0):
        before = [record for record in completed
                  if record.sink_arrived_at <= mark]
        series.append(before[-1].total_delay * 1000.0 if before else 0.0)
    return series


def test_fig1_single_device_delay(benchmark, report):
    series = benchmark.pedantic(
        lambda: {device_id: delay_series(device_id)
                 for device_id in profiles.WORKER_IDS},
        rounds=1, iterations=1)

    report.line("Fig. 1: total delay per frame (ms) at t = 1..5 s, 24 FPS in")
    rows = [(device_id, *("%.0f" % value for value in series[device_id]))
            for device_id in profiles.WORKER_IDS]
    report.table(["phone", "t=1s", "t=2s", "t=3s", "t=4s", "t=5s"], rows)

    for device_id, values in series.items():
        # Delays build up over time on every device (paper: all queues grow).
        assert values[-1] > values[0], device_id
        assert values[-1] > 500.0, device_id  # beyond half a second by t=5
    # Slow phone E accumulates far more delay than fast phone H.
    assert series["E"][-1] > 2.0 * series["H"][-1]
    # Even the fastest device H exceeds ~1 s of delay within 5 s (paper:
    # "its end-to-end frame delay increases to 1.2 s after only 5 s").
    assert series["H"][-1] > 800.0
