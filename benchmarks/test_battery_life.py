"""Sec. I battery observation: solo sensing drains a phone in ~2 hours.

"The camera-based face recognition app exhausts a fully charged phone
battery in about two hours, with 40% of the energy consumed by
computation."  We reproduce the estimate with the power model: one phone
processing the stream alone versus the same phone inside an LRS swarm.
"""

import pytest

from repro import profiles
from repro.simulation import scenarios
from repro.simulation.energy import PowerEstimator
from repro.simulation.swarm import run_swarm


def run_cases():
    solo = run_swarm(scenarios.single_device("H", input_rate=24.0,
                                             duration=30.0,
                                             bounded_queue=True))
    swarm = run_swarm(scenarios.testbed(policy="LRS", duration=30.0))
    return solo, swarm


#: camera sensor + always-on display of the *sensing* phone; workers
#: keep their screens off.  Not part of the compute/Wi-Fi power model,
#: so it is added here where the paper's scenario includes it.
CAMERA_SCREEN_W = 1.6


def test_battery_life(benchmark, report):
    solo, swarm = benchmark.pedantic(run_cases, rounds=1, iterations=1)
    estimator = PowerEstimator(profiles.all_profiles())
    idle_w = profiles.device_profile("H").power.idle_w

    solo_power = solo.energy.per_device["H"]
    solo_hours = estimator.battery_life_hours(
        "H", solo_power.total_w + CAMERA_SCREEN_W)
    swarm_power = swarm.energy.per_device["H"]
    swarm_hours = estimator.battery_life_hours("H", swarm_power.total_w)

    report.line("Battery life of phone H under continuous face recognition")
    report.table(
        ["scenario", "dynamic W", "est. hours"],
        [("solo (cam+screen)", "%.2f" % (solo_power.total_w
                                         + CAMERA_SCREEN_W),
          "%.1f" % solo_hours),
         ("LRS swarm member", "%.2f" % swarm_power.total_w,
          "%.1f" % swarm_hours)],
        fmt="%18s")
    compute_share = solo_power.cpu_w / (solo_power.total_w + CAMERA_SCREEN_W
                                        + idle_w)
    report.line("")
    report.line("compute share of solo drain: %.0f%% (paper: ~40%%)"
                % (100 * compute_share))

    # Solo operation drains the battery in about two hours (paper: ~2 h).
    assert 1.5 <= solo_hours <= 3.5
    # Offloading to the swarm extends a worker's battery life notably.
    assert swarm_hours > solo_hours * 1.5
    # A large fraction of the drain is computation (paper: ~40%).
    assert 0.25 <= compute_share <= 0.55
