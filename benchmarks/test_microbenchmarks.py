"""Microbenchmarks of the per-tuple hot paths.

The paper stresses that LRS routing is "fast low complexity ... it only
requires random number generation" per tuple (Sec. V-A) and that Swing's
overall overhead is small.  These benches time the per-tuple primitives
with pytest-benchmark's statistical machinery (many rounds, real
timings): policy routing, latency bookkeeping, serialization, the
reorder buffer and the two apps' per-frame compute.
"""

import numpy as np
import pytest

from repro.apps.face.detect import FaceDetector
from repro.apps.face.images import FaceGenerator, FrameSynthesizer
from repro.apps.face.recognize import EigenfaceRecognizer
from repro.apps.translate.asr import SpeechRecognizer
from repro.apps.translate.audio import synthesize_utterance
from repro.apps.translate.translator import Translator
from repro.core.latency import AckTracker
from repro.core.policies import make_policy
from repro.core.reorder import ReorderBuffer
from repro.core.tuples import DataTuple
from repro.runtime.serialization import (decode_tuple, encode_tuple,
                                         encode_value)


@pytest.fixture
def lrs_policy():
    policy = make_policy("LRS", seed=0)
    from repro.core.latency import DownstreamStats
    stats = {}
    for index in range(8):
        downstream = "w%d" % index
        policy.on_downstream_added(downstream)
        stats[downstream] = DownstreamStats(downstream_id=downstream,
                                            latency=0.05 + 0.02 * index)
    policy.update(stats, input_rate=24.0)
    return policy


def test_bench_lrs_route_per_tuple(benchmark, lrs_policy):
    """Per-tuple routing decision: must be microseconds."""
    benchmark(lrs_policy.route)


def test_bench_policy_update_round(benchmark, lrs_policy):
    from repro.core.latency import DownstreamStats
    stats = {d: DownstreamStats(downstream_id=d, latency=0.1)
             for d in lrs_policy.downstream_ids()}
    benchmark(lrs_policy.update, stats, 24.0)


def test_bench_ack_tracker_send_ack(benchmark):
    tracker = AckTracker()
    tracker.add_downstream("B")
    state = {"seq": 0}

    def send_and_ack():
        seq = state["seq"]
        state["seq"] += 1
        tracker.record_send(seq, "B", float(seq))
        tracker.record_ack(seq, float(seq) + 0.1)

    benchmark(send_and_ack)


def test_bench_tuple_serialization_roundtrip(benchmark):
    frame = np.zeros(6000, dtype=np.uint8).tobytes()
    data = DataTuple(values={"frame": frame, "id": 7}, seq=0)

    def roundtrip():
        return decode_tuple(encode_tuple(data))

    result = benchmark(roundtrip)
    assert result.get_value("id") == 7


def test_bench_encode_numpy_frame(benchmark):
    array = np.zeros((112, 200), dtype=np.float32)
    benchmark(encode_value, array)


def test_bench_reorder_buffer_offer(benchmark):
    buffer = ReorderBuffer(capacity=24)
    state = {"seq": 0}

    def offer_next():
        seq = state["seq"]
        state["seq"] += 1
        buffer.offer(seq, float(seq))

    benchmark(offer_next)


def test_bench_face_detection_per_frame(benchmark):
    generator = FaceGenerator(4, seed=0)
    synth = FrameSynthesizer(generator, seed=0)
    detector = FaceDetector(generator)
    frame, _ = synth.frame()
    detections = benchmark(detector.detect, frame)
    assert detections


def test_bench_face_recognition_per_probe(benchmark):
    generator = FaceGenerator(4, seed=0)
    recognizer = EigenfaceRecognizer(num_components=16)
    patches, labels = generator.gallery(samples_per_identity=4)
    recognizer.train(patches, labels)
    probe = generator.render(generator.identities[0], jitter=0.3)
    name = benchmark(recognizer.recognize, probe)
    assert name is not None


def test_bench_speech_recognition_per_utterance(benchmark):
    recognizer = SpeechRecognizer(Translator().vocabulary())
    waveform = synthesize_utterance(["the", "red", "car", "runs"], seed=0)
    words = benchmark(recognizer.recognize, waveform)
    assert words == ["the", "red", "car", "runs"]


def test_bench_translation_per_sentence(benchmark):
    translator = Translator()
    text = benchmark(translator.translate, "the red car runs now")
    assert text == "el coche rojo corre ahora"


def test_tracing_overhead_report():
    """Per-tuple cost of the trace plumbing at increasing sample rates.

    Times the full per-tuple upstream path (sampling decision, encode
    with its guarded serialize span, LRS dispatch, ACK fold-in) against
    the NULL_TRACER baseline and writes the report the acceptance
    criteria read: at the recommended 1% sampling the added cost must be
    in the noise (<5% in the report; the assertion keeps a flake
    margin).  Each config gets its own closure so the tracer call sites
    are monomorphic, exactly like a real dispatcher that holds one
    tracer for its whole life — a shared loop would thrash CPython's
    adaptive specialization across tracer types and overstate the cost.
    """
    import time

    from conftest import Report
    from repro import metrics as metrics_mod
    from repro.core.controller import LrsController, PolicyConfig
    from repro.trace import NULL_TRACER, SERIALIZE, Span, Tracer

    frame = np.zeros(6000, dtype=np.uint8).tobytes()
    data = DataTuple(values={"frame": frame, "id": 7}, seq=0)
    tuples_per_round, reps, passes = 400, 20, 3

    class _Egress:
        def send(self, downstream_id, seq, context=None):
            return time.monotonic()

    def make_hot_path(tracer):
        controller = LrsController(
            PolicyConfig(policy="LRS", seed=0, control_interval=1e9),
            egress=_Egress(), registry=metrics_mod.MetricsRegistry(),
            name="A", trace=tracer)
        for index in range(4):
            controller.add_downstream("w%d" % index)

        def hot_path():
            # Mirrors UpstreamDispatcher.dispatch: decide, encode (span-
            # wrapped only when sampled), route + send, fold in the ACK.
            emit = tracer.emit
            for seq in range(tuples_per_round):
                sampled = tracer.sampled(seq)
                if tracer.enabled and sampled:
                    started = time.perf_counter()
                    payload = encode_tuple(data)
                    emit(Span(SERIALIZE, seq, started, time.perf_counter(),
                              device_id="A", hop="serialize:A"),
                         sampled=True)
                else:
                    payload = encode_tuple(data)
                controller.dispatch(seq, context=payload)
                controller.on_ack(seq, processing_delay=0.01)

        return hot_path

    configs = [
        ("tracing off", NULL_TRACER),
        ("rate 0.00", Tracer(sample_rate=0.0, seed=0)),
        ("rate 0.01", Tracer(sample_rate=0.01, seed=0)),
        ("rate 1.00", Tracer(sample_rate=1.0, seed=0)),
    ]
    hot_paths = [(label, make_hot_path(tracer)) for label, tracer in configs]
    # Several alternating passes so machine-load drift lands on every
    # config; within a pass each config runs a warm consecutive burst.
    best = {label: float("inf") for label, _ in configs}
    for _ in range(passes):
        for label, hot_path in hot_paths:
            hot_path()  # warm the adaptive specialization before timing
            for _ in range(reps):
                started = time.perf_counter()
                hot_path()
                elapsed = ((time.perf_counter() - started)
                           / tuples_per_round)
                best[label] = min(best[label], elapsed)

    baseline = best["tracing off"]
    rows = []
    overhead_at_percent = 0.0
    for label, _ in configs:
        overhead = (best[label] / baseline - 1.0) * 100.0
        if label == "rate 0.01":
            overhead_at_percent = overhead
        rows.append((label, "%.2f" % (best[label] * 1e6),
                     "%+.1f%%" % overhead))

    report = Report("test_microbenchmarks")
    report.line("tracing-overhead microbenchmark (per-tuple upstream "
                "path: sample + encode + span emit + LRS dispatch + ack)")
    report.line("%d tuples/round, best of %d rounds, 6 kB frame payload"
                % (tuples_per_round, reps * passes))
    report.line()
    report.table(["config", "us/tuple", "overhead"], rows, fmt="%12s")
    report.line()
    report.line("acceptance: overhead at 1%% sampling = %+.1f%% "
                "(target < 5%%)" % overhead_at_percent)
    report.flush()

    # Lenient CI bound; the written report carries the honest number.
    assert overhead_at_percent < 10.0


def test_batched_data_plane_report():
    """Before/after µs-per-tuple of the batched upstream data plane.

    Times the same per-tuple upstream path as the tracing bench (encode,
    route + send, ACK fold-in) at batch sizes 1/8/64.  Batch 1 is the
    legacy path — encode_tuple, controller.dispatch, controller.on_ack —
    and doubles as the regression gate against the recorded seed number;
    larger batches frame the encoded tuples with encode_batch and make
    one dispatch_batch/on_ack_batch call per batch, which is exactly the
    amortization the batched data plane claims.  Receiver-side zero-copy
    decode is timed separately (informational: it shares the wire frame,
    but its cost sits on the downstream device, not the upstream hot
    path).  Writes ``BENCH_6.json`` with the before/after numbers.
    """
    import json
    import os
    import time

    from conftest import RESULTS_DIR, Report
    from repro import metrics as metrics_mod
    from repro.core.controller import LrsController, PolicyConfig
    from repro.runtime.serialization import decode_batch, encode_batch

    #: µs/tuple of this path recorded when the bench was first added
    SEED_US_PER_TUPLE = 17.77

    frame = np.zeros(6000, dtype=np.uint8).tobytes()
    tuples_per_round, reps, passes = 384, 15, 3
    # The dispatcher receives already-constructed tuples; build the pool
    # outside the timed region so both paths time encode onward.
    datas = [DataTuple(values={"frame": frame, "id": 7}, seq=seq)
             for seq in range(tuples_per_round)]

    class _Egress:
        def send(self, downstream_id, seq, context=None):
            return time.monotonic()

    def make_controller():
        controller = LrsController(
            PolicyConfig(policy="LRS", seed=0, control_interval=1e9),
            egress=_Egress(), registry=metrics_mod.MetricsRegistry(),
            name="A")
        for index in range(4):
            controller.add_downstream("w%d" % index)
        return controller

    def make_hot_path(batch_size):
        controller = make_controller()
        batches = [datas[start:start + batch_size]
                   for start in range(0, tuples_per_round, batch_size)]

        def hot_path():
            if batch_size == 1:
                for data in datas:
                    payload = encode_tuple(data)
                    controller.dispatch(data.seq, context=payload)
                    controller.on_ack(data.seq, processing_delay=0.01)
            else:
                for batch in batches:
                    payloads = [encode_tuple(data) for data in batch]
                    seqs = [data.seq for data in batch]
                    batch_frame = encode_batch(payloads)
                    controller.dispatch_batch(seqs, context=batch_frame)
                    controller.on_ack_batch(seqs, processing_delay=0.01)

        return hot_path

    batch_sizes = [1, 8, 64]
    hot_paths = [(size, make_hot_path(size)) for size in batch_sizes]
    best = {size: float("inf") for size in batch_sizes}
    # Alternating passes so machine-load drift lands on every config.
    for _ in range(passes):
        for size, hot_path in hot_paths:
            hot_path()  # warm the adaptive specialization before timing
            for _ in range(reps):
                started = time.perf_counter()
                hot_path()
                elapsed = ((time.perf_counter() - started)
                           / tuples_per_round)
                best[size] = min(best[size], elapsed)

    # Receiver-side decode of the same wire frames (zero-copy path).
    decode_best = {}
    for size in batch_sizes:
        wire = encode_batch([encode_tuple(data) for data in datas[:size]])
        best_elapsed = float("inf")
        rounds = max(1, tuples_per_round // size)
        for _ in range(reps):
            started = time.perf_counter()
            for _ in range(rounds):
                decode_batch(wire)
            best_elapsed = min(best_elapsed,
                               (time.perf_counter() - started)
                               / (rounds * size))
        decode_best[size] = best_elapsed

    us = {size: best[size] * 1e6 for size in batch_sizes}
    tuples_per_sec = {size: 1.0 / best[size] for size in batch_sizes}
    speedup = us[1] / us[64]

    report = Report("test_batched_data_plane")
    report.line("batched data plane microbenchmark (per-tuple upstream "
                "path: encode + batch frame + dispatch + ack)")
    report.line("%d tuples/round, best of %d rounds, 6 kB frame payload"
                % (tuples_per_round, reps * passes))
    report.line()
    report.table(
        ["batch", "us/tuple", "tuples/s", "decode us/tuple"],
        [(str(size), "%.2f" % us[size],
          "%.0f" % tuples_per_sec[size],
          "%.2f" % (decode_best[size] * 1e6)) for size in batch_sizes],
        fmt="%16s")
    report.line()
    report.line("speedup at batch 64 = %.2fx (target >= 3x); batch-1 = "
                "%.2f us vs %.2f us seed" % (speedup, us[1],
                                             SEED_US_PER_TUPLE))
    report.flush()

    bench = {
        "issue": 6,
        "seed_us_per_tuple": SEED_US_PER_TUPLE,
        "us_per_tuple": {str(size): round(us[size], 3)
                         for size in batch_sizes},
        "tuples_per_sec": {str(size): round(tuples_per_sec[size], 1)
                           for size in batch_sizes},
        "decode_us_per_tuple": {str(size): round(decode_best[size] * 1e6, 3)
                                for size in batch_sizes},
        "speedup_batch64": round(speedup, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_6.json").write_text(
        json.dumps(bench, indent=2) + "\n")

    assert speedup >= 3.0
    if os.environ.get("SWING_BENCH_STRICT"):
        # Cross-machine timings vary; the hard gate is opt-in for CI,
        # where runner generations are comparable.
        assert us[1] <= SEED_US_PER_TUPLE * 1.10, (
            "batch-1 path regressed: %.2f us vs %.2f us seed"
            % (us[1], SEED_US_PER_TUPLE))


def test_keyed_routing_report():
    """Per-tuple cost of keyed routing vs the unkeyed hot path.

    The unkeyed config repeats the BENCH_6 batch-1 path (encode_tuple,
    controller.dispatch, on_ack) on a controller without a key table —
    the regression gate that keyed support stays free when unused: the
    keyed dispatch branch must not tax keyless tuples.  The keyed config
    adds the real per-tuple keyed work — hash_key over the tuple key plus
    the range-table ownership lookup — on a bootstrapped four-owner
    table (informational: this is the price of affinity routing).
    Writes ``BENCH_9.json`` with both numbers.
    """
    import json
    import os
    import time

    from conftest import RESULTS_DIR, Report
    from repro import metrics as metrics_mod
    from repro.core.controller import LrsController, PolicyConfig
    from repro.core.keyed import KeyedConfig, KeyRangeTable, hash_key

    #: committed BENCH_6.json batch-1 number — the ISSUE 9 reference
    BENCH_6_US_PER_TUPLE = 14.279

    frame = np.zeros(6000, dtype=np.uint8).tobytes()
    tuples_per_round, reps, passes = 384, 15, 3
    unkeyed_datas = [DataTuple(values={"frame": frame, "id": 7}, seq=seq)
                     for seq in range(tuples_per_round)]
    keyed_datas = [DataTuple(values={"frame": frame, "id": 7}, seq=seq,
                             key="user-%d" % (seq % 16))
                   for seq in range(tuples_per_round)]

    class _Egress:
        def send(self, downstream_id, seq, context=None):
            return time.monotonic()

    def make_controller(keyed):
        config = PolicyConfig(
            policy="LRS", seed=0, control_interval=1e9,
            keyed=(KeyedConfig(key_count=16, split_enabled=False)
                   if keyed else None))
        controller = LrsController(
            config, egress=_Egress(),
            registry=metrics_mod.MetricsRegistry(), name="A")
        downstreams = ["w%d" % index for index in range(4)]
        for downstream in downstreams:
            controller.add_downstream(downstream)
        if keyed:
            controller.set_key_table(KeyRangeTable.bootstrap(downstreams))
        return controller

    def make_hot_path(keyed):
        controller = make_controller(keyed)

        def hot_path():
            if keyed:
                for data in keyed_datas:
                    payload = encode_tuple(data)
                    controller.dispatch(data.seq, context=payload,
                                        key_hash=hash_key(data.key))
                    controller.on_ack(data.seq, processing_delay=0.01)
            else:
                for data in unkeyed_datas:
                    payload = encode_tuple(data)
                    controller.dispatch(data.seq, context=payload)
                    controller.on_ack(data.seq, processing_delay=0.01)

        return hot_path

    configs = [("unkeyed", make_hot_path(keyed=False)),
               ("keyed", make_hot_path(keyed=True))]
    best = {label: float("inf") for label, _ in configs}
    # Alternating passes so machine-load drift lands on both configs.
    for _ in range(passes):
        for label, hot_path in configs:
            hot_path()  # warm the adaptive specialization before timing
            for _ in range(reps):
                started = time.perf_counter()
                hot_path()
                elapsed = ((time.perf_counter() - started)
                           / tuples_per_round)
                best[label] = min(best[label], elapsed)

    us = {label: best[label] * 1e6 for label, _ in configs}
    overhead = (us["keyed"] / us["unkeyed"] - 1.0) * 100.0

    report = Report("test_keyed_routing")
    report.line("keyed routing microbenchmark (per-tuple upstream path: "
                "encode + [hash + range lookup] + dispatch + ack)")
    report.line("%d tuples/round, best of %d rounds, 6 kB frame payload, "
                "4 owners, 16-key population" % (tuples_per_round,
                                                 reps * passes))
    report.line()
    report.table(
        ["config", "us/tuple", "tuples/s"],
        [(label, "%.2f" % us[label], "%.0f" % (1.0 / best[label]))
         for label, _ in configs], fmt="%12s")
    report.line()
    report.line("keyed overhead = %+.1f%%; unkeyed = %.2f us vs %.2f us "
                "BENCH_6 batch-1 (gate: within 5%%)"
                % (overhead, us["unkeyed"], BENCH_6_US_PER_TUPLE))
    report.flush()

    bench = {
        "issue": 9,
        "bench6_us_per_tuple": BENCH_6_US_PER_TUPLE,
        "us_per_tuple": {label: round(us[label], 3)
                         for label, _ in configs},
        "tuples_per_sec": {label: round(1.0 / best[label], 1)
                           for label, _ in configs},
        "keyed_overhead_percent": round(overhead, 1),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_9.json").write_text(
        json.dumps(bench, indent=2) + "\n")

    # The keyed lookup is one hash + one bisect; anything past 50% means
    # the keyed branch leaked onto the shared path.
    assert us["keyed"] <= us["unkeyed"] * 1.5
    if os.environ.get("SWING_BENCH_STRICT"):
        # Cross-machine timings vary; the hard gate is opt-in for CI,
        # where runner generations are comparable.
        assert us["unkeyed"] <= BENCH_6_US_PER_TUPLE * 1.05, (
            "unkeyed hot path regressed: %.2f us vs %.2f us BENCH_6"
            % (us["unkeyed"], BENCH_6_US_PER_TUPLE))
