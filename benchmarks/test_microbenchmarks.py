"""Microbenchmarks of the per-tuple hot paths.

The paper stresses that LRS routing is "fast low complexity ... it only
requires random number generation" per tuple (Sec. V-A) and that Swing's
overall overhead is small.  These benches time the per-tuple primitives
with pytest-benchmark's statistical machinery (many rounds, real
timings): policy routing, latency bookkeeping, serialization, the
reorder buffer and the two apps' per-frame compute.
"""

import numpy as np
import pytest

from repro.apps.face.detect import FaceDetector
from repro.apps.face.images import FaceGenerator, FrameSynthesizer
from repro.apps.face.recognize import EigenfaceRecognizer
from repro.apps.translate.asr import SpeechRecognizer
from repro.apps.translate.audio import synthesize_utterance
from repro.apps.translate.translator import Translator
from repro.core.latency import AckTracker
from repro.core.policies import make_policy
from repro.core.reorder import ReorderBuffer
from repro.core.tuples import DataTuple
from repro.runtime.serialization import (decode_tuple, encode_tuple,
                                         encode_value)


@pytest.fixture
def lrs_policy():
    policy = make_policy("LRS", seed=0)
    from repro.core.latency import DownstreamStats
    stats = {}
    for index in range(8):
        downstream = "w%d" % index
        policy.on_downstream_added(downstream)
        stats[downstream] = DownstreamStats(downstream_id=downstream,
                                            latency=0.05 + 0.02 * index)
    policy.update(stats, input_rate=24.0)
    return policy


def test_bench_lrs_route_per_tuple(benchmark, lrs_policy):
    """Per-tuple routing decision: must be microseconds."""
    benchmark(lrs_policy.route)


def test_bench_policy_update_round(benchmark, lrs_policy):
    from repro.core.latency import DownstreamStats
    stats = {d: DownstreamStats(downstream_id=d, latency=0.1)
             for d in lrs_policy.downstream_ids()}
    benchmark(lrs_policy.update, stats, 24.0)


def test_bench_ack_tracker_send_ack(benchmark):
    tracker = AckTracker()
    tracker.add_downstream("B")
    state = {"seq": 0}

    def send_and_ack():
        seq = state["seq"]
        state["seq"] += 1
        tracker.record_send(seq, "B", float(seq))
        tracker.record_ack(seq, float(seq) + 0.1)

    benchmark(send_and_ack)


def test_bench_tuple_serialization_roundtrip(benchmark):
    frame = np.zeros(6000, dtype=np.uint8).tobytes()
    data = DataTuple(values={"frame": frame, "id": 7}, seq=0)

    def roundtrip():
        return decode_tuple(encode_tuple(data))

    result = benchmark(roundtrip)
    assert result.get_value("id") == 7


def test_bench_encode_numpy_frame(benchmark):
    array = np.zeros((112, 200), dtype=np.float32)
    benchmark(encode_value, array)


def test_bench_reorder_buffer_offer(benchmark):
    buffer = ReorderBuffer(capacity=24)
    state = {"seq": 0}

    def offer_next():
        seq = state["seq"]
        state["seq"] += 1
        buffer.offer(seq, float(seq))

    benchmark(offer_next)


def test_bench_face_detection_per_frame(benchmark):
    generator = FaceGenerator(4, seed=0)
    synth = FrameSynthesizer(generator, seed=0)
    detector = FaceDetector(generator)
    frame, _ = synth.frame()
    detections = benchmark(detector.detect, frame)
    assert detections


def test_bench_face_recognition_per_probe(benchmark):
    generator = FaceGenerator(4, seed=0)
    recognizer = EigenfaceRecognizer(num_components=16)
    patches, labels = generator.gallery(samples_per_identity=4)
    recognizer.train(patches, labels)
    probe = generator.render(generator.identities[0], jitter=0.3)
    name = benchmark(recognizer.recognize, probe)
    assert name is not None


def test_bench_speech_recognition_per_utterance(benchmark):
    recognizer = SpeechRecognizer(Translator().vocabulary())
    waveform = synthesize_utterance(["the", "red", "car", "runs"], seed=0)
    words = benchmark(recognizer.recognize, waveform)
    assert words == ["the", "red", "car", "runs"]


def test_bench_translation_per_sentence(benchmark):
    translator = Translator()
    text = benchmark(translator.translate, "the red car runs now")
    assert text == "el coche rojo corre ahora"
