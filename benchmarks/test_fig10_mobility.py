"""Fig. 10: throughput and per-device load as a user walks away.

B, G, H compute under LRS; G's user walks from a good-signal spot
(> -30 dBm) to a fair one (-70..-60 dBm) and then a poor one
(-80..-70 dBm), one minute each.  LRS re-routes data to the other two
phones and overall throughput recovers after each move.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

DWELL = 60.0
DURATION = 180.0


def run_mobility():
    return run_swarm(scenarios.moving(duration=DURATION, dwell=DWELL,
                                      seed=4))


def test_fig10_mobility(benchmark, report):
    result = benchmark.pedantic(run_mobility, rounds=1, iterations=1)

    overall = result.throughput_series()
    per_device = result.metrics.per_device_throughput_series(DURATION)
    report.line("Fig. 10 — G walks good -> fair -> poor (60 s each), LRS")
    report.series("overall FPS", overall)
    report.line("")
    for device_id in ("B", "G", "H"):
        report.series("%s FPS" % device_id, per_device[device_id])

    def window(series, start, end):
        chunk = series[int(start):int(end)]
        return sum(chunk) / len(chunk)

    g_good = window(per_device["G"], 10, 55)
    g_fair = window(per_device["G"], 70, 115)
    g_poor = window(per_device["G"], 130, 175)
    # G's share shrinks with its signal strength.
    assert g_fair < g_good
    assert g_poor < g_fair
    assert g_poor < g_good / 2

    # The stationary phones carry a larger share of the (reduced) total
    # once G degrades — Swing re-routed the stream around G.
    b_good = window(per_device["B"], 10, 55)
    b_poor = window(per_device["B"], 130, 175)
    h_good = window(per_device["H"], 10, 55)
    h_poor = window(per_device["H"], 130, 175)
    total_good = window(overall, 10, 55)
    total_poor = window(overall, 130, 175)
    assert ((b_poor + h_poor) / total_poor
            > (b_good + h_good) / total_good)

    # Overall throughput recovers after each move (paper: "recovers
    # quickly after G moves to a region with weak signals").
    assert window(overall, 10, 55) >= 20.0
    assert window(overall, 150, 175) >= 15.0
