"""Arrival-process study: deterministic capture vs bursty sensing.

The paper's sources emit at fixed rates (camera/microphone capture).
Real sensing can be bursty; this bench compares deterministic and
Poisson arrivals at the same mean rate and measures the latency cost of
burstiness — and whether LRS still meets the rate target.
"""

import pytest

from repro.simulation import scenarios
from repro.simulation.swarm import run_swarm

ARRIVALS = ["deterministic", "poisson"]
POLICIES = ["RR", "LRS"]


def run_suite():
    out = {}
    for arrival in ARRIVALS:
        for policy in POLICIES:
            config = scenarios.testbed(policy=policy, duration=60.0)
            config.workload = scenarios.workload_for_app(
                config.workload.app)
            from dataclasses import replace
            config.workload = replace(config.workload, arrival=arrival)
            out[(arrival, policy)] = run_swarm(config)
    return out


def test_arrival_processes(benchmark, report):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report.line("Arrival-process study — deterministic vs Poisson at 24 FPS")
    rows = []
    for arrival in ARRIVALS:
        for policy in POLICIES:
            result = results[(arrival, policy)]
            rows.append(("%s/%s" % (arrival[:4], policy),
                         "%.1f" % result.throughput,
                         "%.0f" % (result.latency.mean * 1000),
                         "%.2f" % result.latency.variance))
    report.table(["case", "thr fps", "lat ms", "var"], rows, fmt="%12s")

    # LRS absorbs burstiness: it still roughly meets the target rate.
    poisson_lrs = results[("poisson", "LRS")]
    assert poisson_lrs.throughput > 20.0
    # Burstiness costs latency relative to paced capture.
    det_lrs = results[("deterministic", "LRS")]
    assert poisson_lrs.latency.mean >= det_lrs.latency.mean * 0.9
    # RR stays collapsed either way.
    assert results[("poisson", "RR")].throughput < 12.0
